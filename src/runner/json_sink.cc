#include "runner/json_sink.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace csim
{

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::array;
    return j;
}

Json &
Json::operator[](const std::string &key)
{
    panic_if(kind_ != Kind::object,
             "Json::operator[] on a non-object value");
    for (auto &[k, v] : obj_) {
        if (k == key)
            return v;
    }
    obj_.emplace_back(key, Json());
    return obj_.back().second;
}

void
Json::push(Json v)
{
    panic_if(kind_ != Kind::array, "Json::push on a non-array value");
    arr_.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::array)
        return arr_.size();
    if (kind_ == Kind::object)
        return obj_.size();
    return 0;
}

void
Json::escape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
Json::dump(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string pad1(static_cast<std::size_t>(indent + 1) * 2,
                           ' ');
    switch (kind_) {
      case Kind::null:
        os << "null";
        break;
      case Kind::boolean:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::integer:
        os << int_;
        break;
      case Kind::number:
        if (std::isfinite(num_)) {
            std::ostringstream tmp;
            tmp.precision(std::numeric_limits<double>::max_digits10);
            tmp << num_;
            os << tmp.str();
        } else {
            os << "null";  // JSON has no NaN/Inf
        }
        break;
      case Kind::string:
        escape(os, str_);
        break;
      case Kind::array:
        if (arr_.empty()) {
            os << "[]";
            break;
        }
        os << "[\n";
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            os << pad1;
            arr_[i].dump(os, indent + 1);
            os << (i + 1 < arr_.size() ? ",\n" : "\n");
        }
        os << pad << ']';
        break;
      case Kind::object:
        if (obj_.empty()) {
            os << "{}";
            break;
        }
        os << "{\n";
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            os << pad1;
            escape(os, obj_[i].first);
            os << ": ";
            obj_[i].second.dump(os, indent + 1);
            os << (i + 1 < obj_.size() ? ",\n" : "\n");
        }
        os << pad << '}';
        break;
    }
}

std::string
Json::dump() const
{
    std::ostringstream os;
    dump(os, 0);
    return os.str();
}

bool
Json::asBool() const
{
    panic_if(kind_ != Kind::boolean, "Json::asBool on a non-boolean");
    return bool_;
}

std::int64_t
Json::asInt() const
{
    panic_if(kind_ != Kind::integer, "Json::asInt on a non-integer");
    return int_;
}

double
Json::asDouble() const
{
    if (kind_ == Kind::integer)
        return static_cast<double>(int_);
    panic_if(kind_ != Kind::number, "Json::asDouble on a non-number");
    return num_;
}

const std::string &
Json::asString() const
{
    panic_if(kind_ != Kind::string, "Json::asString on a non-string");
    return str_;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const std::vector<Json> &
Json::items() const
{
    static const std::vector<Json> empty;
    return kind_ == Kind::array ? arr_ : empty;
}

const std::vector<std::pair<std::string, Json>> &
Json::entries() const
{
    static const std::vector<std::pair<std::string, Json>> empty;
    return kind_ == Kind::object ? obj_ : empty;
}

namespace
{

/** Recursive-descent parser over the strict JSON grammar. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json
    parseDocument()
    {
        Json value = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing content after the JSON document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        int line = 1, column = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
        }
        throw JsonParseError(msgCat(what, " at line ", line,
                                    ", column ", column),
                             line, column);
    }

    bool
    atEnd() const
    {
        return pos_ >= text_.size();
    }

    char
    peek() const
    {
        if (atEnd())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    next()
    {
        const char c = peek();
        ++pos_;
        return c;
    }

    void
    skipWhitespace()
    {
        while (!atEnd()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    void
    expect(char c)
    {
        if (next() != c)
            fail(msgCat("expected '", c, "'"));
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (atEnd() || text_[pos_] != *p)
                fail(msgCat("invalid literal (expected \"", word,
                            "\")"));
            ++pos_;
        }
    }

    Json
    parseValue()
    {
        skipWhitespace();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Json(parseString());
          case 't': literal("true"); return Json(true);
          case 'f': literal("false"); return Json(false);
          case 'n': literal("null"); return Json(nullptr);
          default: return parseNumber();
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::object();
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skipWhitespace();
            if (peek() != '"')
                fail("expected an object key string");
            const std::string key = parseString();
            skipWhitespace();
            expect(':');
            obj[key] = parseValue();
            skipWhitespace();
            const char c = next();
            if (c == '}')
                return obj;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::array();
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            arr.push(parseValue());
            skipWhitespace();
            const char c = next();
            if (c == ']')
                return arr;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    /** Four hex digits of a \\uXXXX escape. */
    unsigned
    readHex4()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
            else
                fail("invalid \\u escape");
        }
        return code;
    }

    /** Append one Unicode code point (<= U+10FFFF) as UTF-8. */
    static void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            const char c = next();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = next();
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned code = readHex4();
                // Surrogate halves are not characters: a high half
                // must combine with an immediately following \u-
                // escaped low half into one supplementary-plane code
                // point; anything else is malformed JSON.
                if (code >= 0xdc00 && code <= 0xdfff)
                    fail("lone low surrogate in \\u escape");
                if (code >= 0xd800 && code <= 0xdbff) {
                    if (next() != '\\' || next() != 'u')
                        fail("high surrogate not followed by a "
                             "\\u-escaped low surrogate");
                    const unsigned low = readHex4();
                    if (low < 0xdc00 || low > 0xdfff)
                        fail("high surrogate followed by a non-"
                             "surrogate \\u escape");
                    code = 0x10000 + ((code - 0xd800) << 10) +
                           (low - 0xdc00);
                }
                appendUtf8(out, code);
                break;
              }
              default: fail("unknown escape sequence");
            }
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        bool floating = false;
        if (!atEnd() && text_[pos_] == '-')
            ++pos_;
        while (!atEnd()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                floating = floating || c == '.' || c == 'e' ||
                           c == 'E';
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string token =
            text_.substr(start, pos_ - start);
        try {
            if (!floating)
                return Json(
                    static_cast<std::int64_t>(std::stoll(token)));
            return Json(std::stod(token));
        } catch (const std::logic_error &) {
            // Integer overflow (or a stray sign): fall back to
            // double, then report truly malformed tokens.
            try {
                return Json(std::stod(token));
            } catch (const std::logic_error &) {
                fail(msgCat("malformed number \"", token, "\""));
            }
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
parseJson(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

Json
readJsonFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open ", path, " for reading");
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return parseJson(buf.str());
    } catch (const JsonParseError &e) {
        throw JsonParseError(msgCat(path, ": ", e.what()), e.line,
                             e.column);
    }
}

void
writeJsonFile(const std::string &path, const Json &root)
{
    std::ofstream out(path, std::ios::trunc);
    fatal_if(!out, "cannot open ", path, " for writing");
    root.dump(out, 0);
    out << '\n';
    out.flush();
    fatal_if(!out, "failed writing ", path);
}

Json
benchArtifact(const std::string &bench, int jobs, double wall_seconds)
{
    Json root = Json::object();
    root["bench"] = bench;
    root["jobs"] = jobs;
    root["wall_seconds"] = wall_seconds;
    root["rows"] = Json::array();
    return root;
}

} // namespace csim
