/**
 * @file
 * Work-stealing host thread pool for the experiment runner.
 *
 * Each worker owns a deque: the owner pushes/pops at the back, idle
 * workers steal from the front of a victim's deque. Submission
 * distributes tasks round-robin so a balanced sweep starts balanced;
 * stealing rebalances when job durations diverge (dead operating
 * points time out quickly, live ones simulate the full payload).
 *
 * The pool runs *host* threads; the simulated SimThreads inside one
 * job never cross host-thread boundaries. One `Machine` per job keeps
 * jobs fully independent.
 */

#ifndef COHERSIM_RUNNER_THREAD_POOL_HH
#define COHERSIM_RUNNER_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace csim
{

/**
 * Fixed-size work-stealing pool. Tasks may be submitted from any
 * thread; drain() blocks the caller until every submitted task has
 * finished and rethrows the first task exception, if any.
 */
class WorkStealingPool
{
  public:
    /** @param workers number of host worker threads (clamped to >= 1). */
    explicit WorkStealingPool(int workers);

    /** Joins all workers; pending tasks are still completed first. */
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /** Enqueue one task. */
    void submit(std::function<void()> task);

    /**
     * Block until all submitted tasks have completed. Rethrows the
     * first exception a task raised (remaining tasks still ran).
     */
    void drain();

    /** Number of worker threads. */
    int workerCount() const { return static_cast<int>(workers_.size()); }

  private:
    /** One worker's deque; the mutex only guards this deque. */
    struct Worker
    {
        std::deque<std::function<void()>> tasks;
        std::mutex mtx;
    };

    void workerLoop(std::size_t self);
    /** Pop from own back / steal from a victim's front. */
    bool takeTask(std::size_t self, std::function<void()> &out);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex sleepMtx_;
    std::condition_variable wake_;  //!< idle workers wait here
    std::condition_variable idle_;  //!< drain() waits here

    std::atomic<std::size_t> queued_{0};   //!< tasks sitting in deques
    std::atomic<std::size_t> pending_{0};  //!< queued + running tasks
    std::atomic<std::size_t> nextWorker_{0};
    std::atomic<bool> stop_{false};

    std::mutex errMtx_;
    std::exception_ptr firstError_;
};

} // namespace csim

#endif // COHERSIM_RUNNER_THREAD_POOL_HH
