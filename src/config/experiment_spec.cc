#include "config/experiment_spec.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"
#include "common/random.hh"
#include "config/field_registry.hh"
#include "config/presets.hh"

namespace csim
{

namespace
{

/** Split a CSV list, trimming blanks; empty input -> empty list. */
std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : text) {
        if (c == ',') {
            out.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur += c;
        }
    }
    if (!cur.empty() || !out.empty())
        out.push_back(cur);
    return out;
}

double
parseReal(const std::string &field, const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        throw ConfigError(msgCat(field, ": '", text,
                                 "' is not a number"));
    return v;
}

int
parseInt(const std::string &field, const std::string &text)
{
    char *end = nullptr;
    const long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        throw ConfigError(msgCat(field, ": '", text,
                                 "' is not an integer"));
    return static_cast<int>(v);
}

} // namespace

std::size_t
ExperimentSpec::payloadBits() const
{
    if (payload.bits > 0)
        return static_cast<std::size_t>(payload.bits);
    return payload.message.size() * 8;
}

BitString
ExperimentSpec::makePayload() const
{
    if (payload.bits > 0) {
        Rng rng(channel.system.seed + 1);
        return randomBits(rng,
                          static_cast<std::size_t>(payload.bits));
    }
    return textToBits(payload.message);
}

ChannelConfig
ExperimentSpec::toChannelConfig() const
{
    ChannelConfig cfg = channel;
    if (rateKbps > 0.0)
        cfg.params = ChannelParams::forTargetKbps(
            rateKbps, cfg.system.timing);
    if (timeoutMargin > 0.0)
        cfg.timeout = cfg.deriveTimeout(payloadBits(),
                                        timeoutMargin);
    return cfg;
}

FleetConfig
ExperimentSpec::toFleetConfig() const
{
    FleetConfig cfg;
    cfg.base = toChannelConfig();
    // Fleet noise is fleet-owned: the per-rig noiseThreads knob only
    // feeds the contention-derived timeout below.
    cfg.base.noiseThreads = 0;
    cfg.pairs = static_cast<int>(fleet.pairs);
    cfg.noiseAgents = static_cast<int>(fleet.noiseAgents);
    cfg.staggerCycles = static_cast<Tick>(fleet.staggerCycles);
    for (const std::string &name : splitCsv(fleet.scenarioMix)) {
        try {
            cfg.scenarioMix.push_back(scenarioFromName(name));
        } catch (const std::exception &) {
            throw ConfigError(msgCat(
                "fleet.scenario_mix entry '", name,
                "' is not a Table I notation or row number"));
        }
    }
    cfg.payloadBits = payloadBits();
    cfg.timeoutMargin = timeoutMargin > 0.0 ? timeoutMargin : 20.0;
    return cfg;
}

void
ExperimentSpec::validate() const
{
    const FieldRegistry &reg = FieldRegistry::instance();
    for (const FieldDef &f : reg.fields())
        reg.check(f, f.get(*this));

    if (channel.params.c0 >= channel.params.c1)
        throw ConfigError(msgCat(
            "channel.c0 = ", channel.params.c0,
            " must be smaller than channel.c1 = ",
            channel.params.c1,
            " (the decoder tells bits apart by the count)"));
    if (payload.bits == 0 && payload.message.empty())
        throw ConfigError(
            "payload.message is empty and payload.bits is 0: "
            "nothing to transmit");
    if (channel.system.timing.longTailMin >
        channel.system.timing.longTailMax)
        throw ConfigError(msgCat(
            "system.timing.long_tail_min = ",
            channel.system.timing.longTailMin,
            " must not exceed system.timing.long_tail_max = ",
            channel.system.timing.longTailMax));

    if (!fleet.scenarioMix.empty()) {
        for (const std::string &name :
             splitCsv(fleet.scenarioMix)) {
            try {
                scenarioFromName(name);
            } catch (const std::exception &) {
                throw ConfigError(msgCat(
                    "fleet.scenario_mix entry '", name,
                    "' is not a Table I notation or row number"));
            }
        }
    }

    sweepAxes(*this);  // throws on malformed axis lists
}

GridAxes
sweepAxes(const ExperimentSpec &spec)
{
    GridAxes axes;

    if (spec.sweep.scenarios == "all") {
        for (const ScenarioInfo &sc : allScenarios())
            axes.scenarios.push_back(sc.id);
    } else if (!spec.sweep.scenarios.empty()) {
        for (const std::string &name :
             splitCsv(spec.sweep.scenarios))
            axes.scenarios.push_back(scenarioFromName(name));
        if (axes.scenarios.empty())
            throw ConfigError("sweep.scenarios is a blank list");
    } else {
        axes.scenarios.push_back(spec.channel.scenario);
    }

    if (!spec.sweep.rates.empty()) {
        for (const std::string &r : splitCsv(spec.sweep.rates))
            axes.rates.push_back(parseReal("sweep.rates", r));
    } else if (spec.sweep.stepKbps > 0.0) {
        if (spec.sweep.toKbps < spec.sweep.fromKbps)
            throw ConfigError(msgCat(
                "sweep.to_kbps = ", spec.sweep.toKbps,
                " is below sweep.from_kbps = ",
                spec.sweep.fromKbps));
        for (double r = spec.sweep.fromKbps;
             r <= spec.sweep.toKbps + 1e-9;
             r += spec.sweep.stepKbps)
            axes.rates.push_back(r);
    } else if (spec.sweep.fromKbps > 0.0 ||
               spec.sweep.toKbps > 0.0) {
        throw ConfigError(
            "sweep.from_kbps/to_kbps need sweep.step_kbps > 0");
    } else {
        axes.rates.push_back(spec.rateKbps);
    }
    for (const double r : axes.rates) {
        if (r < 0.0)
            throw ConfigError(msgCat(
                "sweep rate ", r, " Kbps is negative"));
    }

    if (!spec.sweep.noiseLevels.empty()) {
        for (const std::string &n :
             splitCsv(spec.sweep.noiseLevels)) {
            const int threads = parseInt("sweep.noise_levels", n);
            if (threads < 0)
                throw ConfigError(msgCat(
                    "sweep.noise_levels entry ", threads,
                    " is negative"));
            axes.noiseLevels.push_back(threads);
        }
    } else {
        axes.noiseLevels.push_back(spec.channel.noiseThreads);
    }

    return axes;
}

std::vector<ExperimentSpec>
expandGrid(const ExperimentSpec &spec)
{
    const GridAxes axes = sweepAxes(spec);
    std::vector<ExperimentSpec> points;
    points.reserve(axes.size());
    for (const Scenario sc : axes.scenarios) {
        for (const double rate : axes.rates) {
            for (const int noise : axes.noiseLevels) {
                ExperimentSpec p = spec;
                p.channel.scenario = sc;
                p.rateKbps = rate;
                p.channel.noiseThreads = noise;
                p.sweep = SweepSpec{};
                points.push_back(std::move(p));
            }
        }
    }
    return points;
}

} // namespace csim
