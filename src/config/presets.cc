#include "config/presets.hh"

#include "common/logging.hh"
#include "config/field_registry.hh"

namespace csim
{

namespace
{

std::vector<Preset>
buildPresets()
{
    std::vector<Preset> presets;

    // Table I scenarios, by paper notation (and row number via
    // scenarioFromName). The preset body is one data line; the
    // loaders, combos and placement all follow from the scenario.
    for (const ScenarioInfo &sc : allScenarios()) {
        presets.push_back(
            {sc.notation,
             msgCat("Table I row ",
                    static_cast<int>(sc.id) + 1, ": CSc=",
                    comboName(sc.csc), ", CSb=",
                    comboName(sc.csb)),
             {{"channel.scenario", sc.notation}}});
    }

    // §VIII-E mitigations. Deployed in the paper's KSM setting (the
    // deduplication channel is what two of the three defences
    // police), hence channel.sharing = ksm in all three.
    presets.push_back(
        {"mitigation-targeted-noise",
         "§VIII-E technique 1: a monitor thread re-loads shared "
         "pages, turning E into S under the spy",
         {{"channel.sharing", "ksm"},
          {"channel.defense", "targeted-noise"}}});
    presets.push_back(
        {"mitigation-ksm-guard",
         "§VIII-E technique 2: un-merge shared pages with "
         "suspicious flush rates",
         {{"channel.sharing", "ksm"},
          {"channel.defense", "ksm-guard"}}});
    presets.push_back(
        {"mitigation-llc-notify",
         "§VIII-E technique 3: the LLC learns of E->M upgrades and "
         "serves E-state reads itself",
         {{"channel.sharing", "ksm"},
          {"channel.defense", "llc-notify"}}});

    // Randomized-cache defenses (beyond the paper): evaluated in the
    // same KSM setting so the defense matrix compares like for like.
    // The rekey period is deliberately aggressive (every 250
    // LLC-side operations): a flush+reload channel only suffers
    // when rekeys land *within* a transmission, and the quick-grid
    // payloads are short. Real CEASER remaps far more slowly; the
    // matrix models the strong end of the design space.
    presets.push_back(
        {"defense-remap",
         "randomized defense: keyed LLC index with periodic rekey "
         "(CEASER-style dynamic remapping)",
         {{"channel.sharing", "ksm"},
          {"mem.llc_index", "remap"},
          {"mem.remap_period", "250"}}});
    presets.push_back(
        {"defense-mirage",
         "randomized defense: MIRAGE-style keyed random placement "
         "with random LLC eviction",
         {{"channel.sharing", "ksm"},
          {"mem.llc_index", "mirage"}}});

    // The protocol-flavor x lookup x inclusion matrix from
    // bench/ablation_protocols, in the bench's row order.
    presets.push_back({"proto-mesi-dir",
                       "MESI / directory (baseline)",
                       {{"system.flavor", "mesi"},
                        {"system.lookup", "directory"},
                        {"system.llc_inclusive", "true"}}});
    presets.push_back({"proto-mesif-dir",
                       "MESIF / directory (Intel)",
                       {{"system.flavor", "mesif"},
                        {"system.lookup", "directory"},
                        {"system.llc_inclusive", "true"}}});
    presets.push_back({"proto-moesi-dir",
                       "MOESI / directory (AMD)",
                       {{"system.flavor", "moesi"},
                        {"system.lookup", "directory"},
                        {"system.llc_inclusive", "true"}}});
    presets.push_back({"proto-mesi-snoop",
                       "MESI / snoop bus",
                       {{"system.flavor", "mesi"},
                        {"system.lookup", "snoop"},
                        {"system.llc_inclusive", "true"}}});
    presets.push_back({"proto-moesi-snoop",
                       "MOESI / snoop bus",
                       {{"system.flavor", "moesi"},
                        {"system.lookup", "snoop"},
                        {"system.llc_inclusive", "true"}}});
    presets.push_back({"proto-mesi-noninclusive",
                       "MESI / non-inclusive LLC",
                       {{"system.flavor", "mesi"},
                        {"system.lookup", "directory"},
                        {"system.llc_inclusive", "false"}}});

    // Bench sweep grids.
    presets.push_back(
        {"fig08-sweep",
         "Figure 8 grid: all scenarios x 100..1000 Kbps",
         {{"sweep.scenarios", "all"},
          {"sweep.from_kbps", "100"},
          {"sweep.to_kbps", "1000"},
          {"sweep.step_kbps", "100"},
          {"payload.bits", "400"},
          {"channel.timeout_margin", "10"}}});
    presets.push_back(
        {"fig09-noise",
         "Figure 9 grid: all scenarios x 0..8 noise threads at "
         "~500 Kbps",
         {{"sweep.scenarios", "all"},
          {"channel.rate_kbps", "500"},
          {"sweep.noise_levels", "0,1,2,4,6,8"},
          {"payload.bits", "300"},
          {"channel.timeout_margin", "20"}}});
    presets.push_back(
        {"quick",
         "generic smoke: one short Table I row 4 transmission at "
         "500 Kbps (CI profile/report smokes)",
         {{"channel.scenario", "RExclc-LSharedb"},
          {"channel.rate_kbps", "500"},
          {"payload.bits", "120"},
          {"channel.timeout_margin", "20"}}});
    presets.push_back(
        {"health-quick",
         "small health-report grid: all scenarios, quiet + noisy",
         {{"sweep.scenarios", "all"},
          {"channel.rate_kbps", "500"},
          {"sweep.noise_levels", "0,6"},
          {"payload.bits", "120"},
          {"channel.timeout_margin", "20"}}});
    presets.push_back(
        {"phy-quick",
         "PHY stack smoke: hamming-soft framed FEC on Table I "
         "row 4 at 500 Kbps under light noise",
         {{"channel.scenario", "RExclc-LSharedb"},
          {"phy.profile", "hamming-soft"},
          {"channel.rate_kbps", "500"},
          {"channel.noise_threads", "2"},
          {"payload.bits", "256"},
          {"channel.timeout_margin", "20"}}});
    presets.push_back(
        {"dirty-quick",
         "dirty-state vector smoke: E-vs-M writeback-timing "
         "channel at 500 Kbps on a quiet machine",
         {{"channel.vector", "dirty"},
          {"channel.rate_kbps", "500"},
          {"payload.bits", "64"},
          {"channel.timeout_margin", "20"}}});
    presets.push_back(
        {"lru-quick",
         "LRU-state vector smoke: replacement-metadata channel "
         "(needs mem.replacement=lru/plru to function)",
         {{"channel.vector", "lru"},
          {"payload.bits", "48"}}});
    presets.push_back(
        {"pagefault-quick",
         "page-fault vector smoke: KSM copy-on-write fault-timing "
         "channel",
         {{"channel.vector", "pagefault"},
          {"payload.bits", "32"}}});
    presets.push_back(
        {"fleet-quick",
         "multi-tenant smoke: 4 pairs + 2 noise agents on a "
         "16-core-per-socket machine",
         {{"fleet.pairs", "4"},
          {"fleet.noise_agents", "2"},
          {"system.cores_per_socket", "16"},
          {"channel.rate_kbps", "500"},
          {"payload.bits", "64"},
          {"channel.timeout_margin", "20"}}});
    presets.push_back(
        {"fleet-heavy",
         "dense multi-tenant run: 16 oversubscribed pairs + 8 "
         "noise agents",
         {{"fleet.pairs", "16"},
          {"fleet.noise_agents", "8"},
          {"system.cores_per_socket", "16"},
          {"channel.rate_kbps", "500"},
          {"payload.bits", "96"},
          {"channel.timeout_margin", "25"}}});

    return presets;
}

} // namespace

const std::vector<Preset> &
allPresets()
{
    static const std::vector<Preset> presets = buildPresets();
    return presets;
}

const Preset *
findPreset(const std::string &name)
{
    for (const Preset &p : allPresets()) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

std::vector<const Preset *>
presetsWithPrefix(const std::string &prefix)
{
    std::vector<const Preset *> out;
    for (const Preset &p : allPresets()) {
        if (p.name.rfind(prefix, 0) == 0)
            out.push_back(&p);
    }
    return out;
}

std::vector<const Preset *>
scenarioPresets()
{
    std::vector<const Preset *> out;
    for (const ScenarioInfo &sc : allScenarios())
        out.push_back(findPreset(sc.notation));
    return out;
}

void
applyPreset(ExperimentSpec &spec, const Preset &preset)
{
    const FieldRegistry &reg = FieldRegistry::instance();
    for (const auto &[key, value] : preset.settings) {
        const FieldDef *field = reg.find(key);
        if (!field)
            throw ConfigError(reg.unknownKeyMessage(
                key, msgCat("preset '", preset.name, "'")));
        field->set(spec, reg.parse(*field, value));
    }
}

Scenario
scenarioFromName(const std::string &name)
{
    for (const ScenarioInfo &sc : allScenarios()) {
        if (name == sc.notation)
            return sc.id;
    }
    if (name.size() == 1 && name[0] >= '1' && name[0] <= '6')
        return allScenarios()[name[0] - '1'].id;

    std::string accepted;
    for (const ScenarioInfo &sc : allScenarios()) {
        if (!accepted.empty())
            accepted += ", ";
        accepted += sc.notation;
    }
    throw ConfigError(msgCat(
        "unknown scenario '", name,
        "'; use a Table I notation (", accepted,
        ") or a row number 1-6"));
}

} // namespace csim
