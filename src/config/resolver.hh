/**
 * @file
 * Layered configuration resolution with provenance. A resolver
 * starts from the built-in defaults and applies layers in increasing
 * precedence — named preset, config file, CLI overrides — recording
 * for every field where its final value came from, so
 * `cohersim info --config` can show exactly which layer set what.
 */

#ifndef COHERSIM_CONFIG_RESOLVER_HH
#define COHERSIM_CONFIG_RESOLVER_HH

#include <map>
#include <string>

#include "config/experiment_spec.hh"
#include "config/field_registry.hh"

namespace csim
{

class ConfigResolver
{
  public:
    /** Starts from built-in defaults (provenance "default"). */
    ConfigResolver() = default;

    /** Apply a named preset; throws ConfigError when unknown. */
    void applyPreset(const std::string &name);

    /**
     * Apply a JSON config document: nested objects mirror the dotted
     * field names ({"system": {"flavor": ...}} sets system.flavor).
     * A top-level "preset" string names a preset applied before the
     * file's own settings. Unknown keys and out-of-range values
     * throw ConfigError naming the key. @p source labels provenance
     * (usually "file:<path>").
     */
    void applyJson(const Json &root, const std::string &source);

    /** Read @p path and applyJson with source "file:<path>". */
    void applyFile(const std::string &path);

    /**
     * Apply one `--key value` override. @p key may be a canonical
     * dotted name or a CLI alias. Throws ConfigError (with the
     * accepted-keys message) when the key is unknown.
     */
    void applyOverride(const std::string &key,
                       const std::string &value,
                       const std::string &source);

    const ExperimentSpec &spec() const { return spec_; }

    /** Where a field's current value came from ("default" if unset). */
    const std::string &provenance(const std::string &field) const;

    /**
     * Full nested dump of every field in registry order. Feeding the
     * result back through applyJson reproduces the spec bit-exactly,
     * so a dump is a complete, re-runnable experiment manifest.
     */
    Json toJson() const;

    /** Write toJson() to @p path. */
    void dumpFile(const std::string &path) const;

  private:
    ExperimentSpec spec_;
    std::map<std::string, std::string> provenance_;
};

} // namespace csim

#endif // COHERSIM_CONFIG_RESOLVER_HH
