/**
 * @file
 * Named experiment presets: the single home of every scenario the
 * repo ships. A preset is a short list of (field, value) settings
 * applied through the field registry, so presets validate exactly
 * like config files and CLI overrides do.
 *
 * Shipped presets:
 *  - the six Table I attack scenarios, by paper notation;
 *  - the three §VIII-E mitigations (mitigation-*);
 *  - the protocol-flavor × lookup × inclusion matrix (proto-*)
 *    from bench/ablation_protocols;
 *  - the bench sweep grids (fig08-sweep, fig09-noise).
 */

#ifndef COHERSIM_CONFIG_PRESETS_HH
#define COHERSIM_CONFIG_PRESETS_HH

#include <string>
#include <utility>
#include <vector>

#include "config/experiment_spec.hh"

namespace csim
{

/** One named preset: field settings in CLI string form. */
struct Preset
{
    std::string name;
    std::string doc;
    std::vector<std::pair<std::string, std::string>> settings;
};

/** Every shipped preset, in display order. */
const std::vector<Preset> &allPresets();

/** Lookup by name; null when unknown. */
const Preset *findPreset(const std::string &name);

/** Presets whose name starts with @p prefix, in registry order. */
std::vector<const Preset *>
presetsWithPrefix(const std::string &prefix);

/** The six Table I scenario presets, in table order. */
std::vector<const Preset *> scenarioPresets();

/** Apply a preset's settings to @p spec (registry-validated). */
void applyPreset(ExperimentSpec &spec, const Preset &preset);

/**
 * Centralized scenario-name parsing: a Table I notation
 * (e.g. "RExclc-LSharedb") or a row number "1".."6". Throws
 * ConfigError listing the accepted names otherwise.
 */
Scenario scenarioFromName(const std::string &name);

} // namespace csim

#endif // COHERSIM_CONFIG_PRESETS_HH
