/**
 * @file
 * Reflection-style field registry over `ExperimentSpec`: one
 * `FieldDef` per configurable knob, carrying the dotted name, the
 * type, the default, the valid range (or choice list), a doc string
 * and typed accessors. The registry is the single source of truth
 * for validation, JSON (de)serialization, CLI overrides and the
 * `cohersim info --fields` listing, so every consumer rejects the
 * same unknown keys and reports the same range errors.
 */

#ifndef COHERSIM_CONFIG_FIELD_REGISTRY_HH
#define COHERSIM_CONFIG_FIELD_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "config/experiment_spec.hh"

namespace csim
{

class Json;

/** A field value in transit (parsed but not yet applied). */
using FieldValue =
    std::variant<bool, std::int64_t, double, std::string>;

/** One configurable knob of an ExperimentSpec. */
struct FieldDef
{
    enum class Type : std::uint8_t
    {
        boolean,
        integer,
        real,
        text,
        choice,  //!< string restricted to `choices`
    };

    std::string name;  //!< dotted path, e.g. "system.timing.l1_hit"
    Type type = Type::integer;
    std::string doc;
    /** Inclusive bounds for integer/real fields. */
    double min = 0.0;
    double max = 0.0;
    /** Accepted values for choice fields (canonical spellings). */
    std::vector<std::string> choices;
    /** Short CLI spellings (e.g. "rate" for "channel.rate_kbps"). */
    std::vector<std::string> aliases;

    std::function<FieldValue(const ExperimentSpec &)> get;
    std::function<void(ExperimentSpec &, const FieldValue &)> set;

    /** Render a value the way the CLI/provenance tables print it. */
    std::string format(const FieldValue &value) const;
};

/** Short type tag for field listings ("int", "real", "choice"...). */
const char *fieldTypeName(FieldDef::Type t);

/** The registry: every field of ExperimentSpec, in dump order. */
class FieldRegistry
{
  public:
    static const FieldRegistry &instance();

    const std::vector<FieldDef> &fields() const { return fields_; }

    /** Lookup by canonical name or alias; null when unknown. */
    const FieldDef *find(const std::string &name) const;

    /**
     * Parse a CLI-style string into a validated value for @p field.
     * Throws ConfigError naming the field, the offending value and
     * the accepted range/choices.
     */
    FieldValue parse(const FieldDef &field,
                     const std::string &text) const;

    /** Same, from a JSON scalar (type-checked, range-checked). */
    FieldValue fromJson(const FieldDef &field, const Json &value,
                        const std::string &source) const;

    /** Range/choice check of an already-typed value. */
    void check(const FieldDef &field, const FieldValue &value) const;

    /** Convert a field's current value to a JSON scalar. */
    Json toJson(const FieldDef &field,
                const ExperimentSpec &spec) const;

    /**
     * The "unknown key" error message: names @p key, suggests the
     * nearest field when one is plausibly close, and points at
     * `cohersim info --fields`.
     */
    std::string unknownKeyMessage(const std::string &key,
                                  const std::string &source) const;

  private:
    FieldRegistry();

    std::vector<FieldDef> fields_;
};

} // namespace csim

#endif // COHERSIM_CONFIG_FIELD_REGISTRY_HH
