#include "config/field_registry.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "config/presets.hh"
#include "phy/phy_config.hh"
#include "runner/json_sink.hh"

namespace csim
{

namespace
{

/** Plain Levenshtein over key names, for "did you mean" hints. */
std::size_t
keyDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j - 1] + 1, row[j] + 1, sub});
        }
    }
    return row[b.size()];
}

std::string
joinChoices(const std::vector<std::string> &choices)
{
    std::string out;
    for (const std::string &c : choices) {
        if (!out.empty())
            out += ", ";
        out += c;
    }
    return out;
}

/** Format a double the way Json::dump does (shortest exact form). */
std::string
formatReal(double d)
{
    std::ostringstream os;
    os.precision(17);
    os << d;
    return os.str();
}

} // namespace

const char *
fieldTypeName(FieldDef::Type t)
{
    switch (t) {
      case FieldDef::Type::boolean: return "bool";
      case FieldDef::Type::integer: return "int";
      case FieldDef::Type::real: return "real";
      case FieldDef::Type::text: return "text";
      case FieldDef::Type::choice: return "choice";
    }
    return "?";
}

std::string
FieldDef::format(const FieldValue &value) const
{
    switch (type) {
      case Type::boolean:
        return std::get<bool>(value) ? "true" : "false";
      case Type::integer:
        return std::to_string(std::get<std::int64_t>(value));
      case Type::real:
        return formatReal(std::get<double>(value));
      case Type::text:
      case Type::choice:
        return std::get<std::string>(value);
    }
    return "?";
}

const FieldRegistry &
FieldRegistry::instance()
{
    static const FieldRegistry registry;
    return registry;
}

const FieldDef *
FieldRegistry::find(const std::string &name) const
{
    for (const FieldDef &f : fields_) {
        if (f.name == name)
            return &f;
        for (const std::string &alias : f.aliases) {
            if (alias == name)
                return &f;
        }
    }
    return nullptr;
}

void
FieldRegistry::check(const FieldDef &field,
                     const FieldValue &value) const
{
    if (field.type == FieldDef::Type::integer ||
        field.type == FieldDef::Type::real) {
        const double v =
            field.type == FieldDef::Type::integer
                ? static_cast<double>(std::get<std::int64_t>(value))
                : std::get<double>(value);
        if (v < field.min || v > field.max) {
            throw ConfigError(msgCat(
                field.name, " = ", field.format(value),
                " is out of range [", formatReal(field.min), ", ",
                formatReal(field.max), "]"));
        }
    }
    if (field.type == FieldDef::Type::choice) {
        const std::string &v = std::get<std::string>(value);
        if (std::find(field.choices.begin(), field.choices.end(),
                      v) == field.choices.end()) {
            throw ConfigError(msgCat(
                field.name, " = '", v, "' is not one of: ",
                joinChoices(field.choices)));
        }
    }
}

FieldValue
FieldRegistry::parse(const FieldDef &field,
                     const std::string &text) const
{
    FieldValue value;
    switch (field.type) {
      case FieldDef::Type::boolean: {
        if (text == "true" || text == "1" || text == "yes")
            value = true;
        else if (text == "false" || text == "0" || text == "no")
            value = false;
        else
            throw ConfigError(msgCat(field.name, " = '", text,
                                     "' is not a boolean (use "
                                     "true/false)"));
        break;
      }
      case FieldDef::Type::integer: {
        char *end = nullptr;
        const long long v = std::strtoll(text.c_str(), &end, 10);
        if (end == text.c_str() || *end != '\0')
            throw ConfigError(msgCat(field.name, " = '", text,
                                     "' is not an integer"));
        value = static_cast<std::int64_t>(v);
        break;
      }
      case FieldDef::Type::real: {
        char *end = nullptr;
        const double v = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0')
            throw ConfigError(msgCat(field.name, " = '", text,
                                     "' is not a number"));
        value = v;
        break;
      }
      case FieldDef::Type::text:
      case FieldDef::Type::choice:
        value = text;
        break;
    }
    // Scenario names get canonicalized (row numbers, notations)
    // before the choice check so "--scenario 4" keeps working.
    if (field.name == "channel.scenario")
        value = std::string(
            scenarioInfo(scenarioFromName(std::get<std::string>(
                             value)))
                .notation);
    check(field, value);
    return value;
}

FieldValue
FieldRegistry::fromJson(const FieldDef &field, const Json &value,
                        const std::string &source) const
{
    switch (field.type) {
      case FieldDef::Type::boolean:
        if (!value.isBool())
            throw ConfigError(msgCat(source, ": ", field.name,
                                     " must be a boolean"));
        return parse(field, value.asBool() ? "true" : "false");
      case FieldDef::Type::integer: {
        if (!value.isInt())
            throw ConfigError(msgCat(source, ": ", field.name,
                                     " must be an integer"));
        FieldValue v = value.asInt();
        check(field, v);
        return v;
      }
      case FieldDef::Type::real: {
        if (!value.isNumber())
            throw ConfigError(msgCat(source, ": ", field.name,
                                     " must be a number"));
        FieldValue v = value.asDouble();
        check(field, v);
        return v;
      }
      case FieldDef::Type::text:
      case FieldDef::Type::choice:
        if (!value.isString())
            throw ConfigError(msgCat(source, ": ", field.name,
                                     " must be a string"));
        return parse(field, value.asString());
    }
    throw ConfigError(msgCat(source, ": ", field.name,
                             " has an unhandled type"));
}

Json
FieldRegistry::toJson(const FieldDef &field,
                      const ExperimentSpec &spec) const
{
    const FieldValue value = field.get(spec);
    switch (field.type) {
      case FieldDef::Type::boolean:
        return Json(std::get<bool>(value));
      case FieldDef::Type::integer:
        return Json(std::get<std::int64_t>(value));
      case FieldDef::Type::real:
        return Json(std::get<double>(value));
      case FieldDef::Type::text:
      case FieldDef::Type::choice:
        return Json(std::get<std::string>(value));
    }
    return Json();
}

std::string
FieldRegistry::unknownKeyMessage(const std::string &key,
                                 const std::string &source) const
{
    std::string msg =
        msgCat(source, ": unknown config key '", key, "'");
    const FieldDef *best = nullptr;
    std::size_t best_dist = 3;  // suggest only plausible typos
    for (const FieldDef &f : fields_) {
        auto consider = [&](const std::string &candidate) {
            const std::size_t d = keyDistance(key, candidate);
            if (d < best_dist) {
                best_dist = d;
                best = &f;
            }
        };
        consider(f.name);
        // Compare against the leaf too ("flavour" vs "flavor").
        const auto dot = f.name.rfind('.');
        if (dot != std::string::npos)
            consider(f.name.substr(dot + 1));
        for (const std::string &alias : f.aliases)
            consider(alias);
    }
    if (best)
        msg += msgCat(" (did you mean '", best->name, "'?)");
    msg += "; run `cohersim info --fields` for every accepted key";
    return msg;
}

namespace
{

using Type = FieldDef::Type;

/**
 * Builders keep the registry table below declarative: one line per
 * field with the name, range, doc and an lvalue expression locating
 * the member inside the spec.
 */
#define ACCESS_INT(expr)                                               \
    [](const ExperimentSpec &s) -> FieldValue {                        \
        return static_cast<std::int64_t>(expr);                        \
    },                                                                 \
    [](ExperimentSpec &s, const FieldValue &v) {                       \
        expr = static_cast<std::remove_reference_t<decltype(expr)>>(   \
            std::get<std::int64_t>(v));                                \
    }

#define ACCESS_REAL(expr)                                              \
    [](const ExperimentSpec &s) -> FieldValue {                        \
        return static_cast<double>(expr);                              \
    },                                                                 \
    [](ExperimentSpec &s, const FieldValue &v) {                       \
        expr = std::get<double>(v);                                    \
    }

#define ACCESS_BOOL(expr)                                              \
    [](const ExperimentSpec &s) -> FieldValue { return bool(expr); },  \
    [](ExperimentSpec &s, const FieldValue &v) {                       \
        expr = std::get<bool>(v);                                      \
    }

#define ACCESS_TEXT(expr)                                              \
    [](const ExperimentSpec &s) -> FieldValue { return expr; },        \
    [](ExperimentSpec &s, const FieldValue &v) {                       \
        expr = std::get<std::string>(v);                               \
    }

FieldDef
makeNumeric(const char *name, Type type, double lo, double hi,
            const char *doc,
            std::function<FieldValue(const ExperimentSpec &)> get,
            std::function<void(ExperimentSpec &, const FieldValue &)>
                set,
            std::vector<std::string> aliases = {})
{
    FieldDef f;
    f.name = name;
    f.type = type;
    f.doc = doc;
    f.min = lo;
    f.max = hi;
    f.aliases = std::move(aliases);
    f.get = std::move(get);
    f.set = std::move(set);
    return f;
}

FieldDef
makeFlag(const char *name, const char *doc,
         std::function<FieldValue(const ExperimentSpec &)> get,
         std::function<void(ExperimentSpec &, const FieldValue &)>
             set,
         std::vector<std::string> aliases = {})
{
    FieldDef f;
    f.name = name;
    f.type = Type::boolean;
    f.doc = doc;
    f.aliases = std::move(aliases);
    f.get = std::move(get);
    f.set = std::move(set);
    return f;
}

FieldDef
makeText(const char *name, const char *doc,
         std::function<FieldValue(const ExperimentSpec &)> get,
         std::function<void(ExperimentSpec &, const FieldValue &)>
             set,
         std::vector<std::string> aliases = {})
{
    FieldDef f;
    f.name = name;
    f.type = Type::text;
    f.doc = doc;
    f.aliases = std::move(aliases);
    f.get = std::move(get);
    f.set = std::move(set);
    return f;
}

FieldDef
makeChoice(const char *name, std::vector<std::string> choices,
           const char *doc,
           std::function<FieldValue(const ExperimentSpec &)> get,
           std::function<void(ExperimentSpec &, const FieldValue &)>
               set,
           std::vector<std::string> aliases = {})
{
    FieldDef f;
    f.name = name;
    f.type = Type::choice;
    f.doc = doc;
    f.choices = std::move(choices);
    f.aliases = std::move(aliases);
    f.get = std::move(get);
    f.set = std::move(set);
    return f;
}

} // namespace

FieldRegistry::FieldRegistry()
{
    auto add = [this](FieldDef f) {
        fields_.push_back(std::move(f));
    };
    constexpr double big = 1e18;

    // --- system: topology and protocol --------------------------------
    add(makeNumeric("system.sockets", Type::integer, 2, 8,
                    "processor packages (the channel needs two)",
                    ACCESS_INT(s.channel.system.sockets)));
    add(makeNumeric("system.cores_per_socket", Type::integer, 4, 32,
                    "cores per socket (>= 4 for the core plan)",
                    ACCESS_INT(s.channel.system.coresPerSocket)));
    add(makeChoice("system.flavor", {"mesi", "mesif", "moesi"},
                   "coherence protocol flavor",
                   [](const ExperimentSpec &s) -> FieldValue {
                       switch (s.channel.system.flavor) {
                         case CoherenceFlavor::mesi:
                           return std::string("mesi");
                         case CoherenceFlavor::mesif:
                           return std::string("mesif");
                         case CoherenceFlavor::moesi:
                           return std::string("moesi");
                       }
                       return std::string("?");
                   },
                   [](ExperimentSpec &s, const FieldValue &v) {
                       const std::string &n =
                           std::get<std::string>(v);
                       s.channel.system.flavor =
                           n == "mesif" ? CoherenceFlavor::mesif
                           : n == "moesi"
                               ? CoherenceFlavor::moesi
                               : CoherenceFlavor::mesi;
                   },
                   {"flavor"}));
    add(makeChoice("system.lookup", {"directory", "snoop"},
                   "how a miss locates other copies",
                   [](const ExperimentSpec &s) -> FieldValue {
                       return std::string(coherenceLookupName(
                           s.channel.system.lookup));
                   },
                   [](ExperimentSpec &s, const FieldValue &v) {
                       s.channel.system.lookup =
                           std::get<std::string>(v) == "snoop"
                               ? CoherenceLookup::snoop
                               : CoherenceLookup::directory;
                   },
                   {"lookup"}));
    add(makeFlag("system.llc_inclusive",
                 "legacy switch: inclusive LLC (true) vs NINE "
                 "(false); superseded by mem.inclusivity",
                 [](const ExperimentSpec &s) -> FieldValue {
                     return s.channel.system.llcInclusive();
                 },
                 [](ExperimentSpec &s, const FieldValue &v) {
                     s.channel.system.inclusivity =
                         std::get<bool>(v) ? Inclusivity::inclusive
                                           : Inclusivity::nine;
                 }));
    add(makeNumeric("system.seed", Type::integer, 0, big,
                    "seed for all simulator randomness",
                    ACCESS_INT(s.channel.system.seed), {"seed"}));

    // --- system: cache geometry ---------------------------------------
    add(makeNumeric("system.l1_bytes", Type::integer, 4096, 1 << 20,
                    "private L1 data cache size",
                    ACCESS_INT(s.channel.system.l1.sizeBytes)));
    add(makeNumeric("system.l1_assoc", Type::integer, 1, 64,
                    "L1 associativity",
                    ACCESS_INT(s.channel.system.l1.assoc)));
    add(makeNumeric("system.l2_bytes", Type::integer, 4096, 1 << 24,
                    "private L2 cache size",
                    ACCESS_INT(s.channel.system.l2.sizeBytes)));
    add(makeNumeric("system.l2_assoc", Type::integer, 1, 64,
                    "L2 associativity",
                    ACCESS_INT(s.channel.system.l2.assoc)));
    add(makeNumeric("system.llc_bytes", Type::integer, 65536,
                    1ll << 32, "shared LLC size per socket",
                    ACCESS_INT(s.channel.system.llc.sizeBytes)));
    add(makeNumeric("system.llc_assoc", Type::integer, 1, 64,
                    "LLC associativity",
                    ACCESS_INT(s.channel.system.llc.assoc)));

    // --- system.timing: clock and hit/hop latencies --------------------
    add(makeNumeric("system.timing.clock_ghz", Type::real, 0.1, 10,
                    "reference clock, GHz",
                    ACCESS_REAL(s.channel.system.timing.clockGhz)));
    add(makeNumeric("system.timing.l1_hit", Type::integer, 1, 100,
                    "L1 hit latency, cycles",
                    ACCESS_INT(s.channel.system.timing.l1Hit)));
    add(makeNumeric("system.timing.l2_hit", Type::integer, 1, 200,
                    "L2 hit latency, cycles",
                    ACCESS_INT(s.channel.system.timing.l2Hit)));
    add(makeNumeric(
        "system.timing.priv_miss_overhead", Type::integer, 0, 10000,
        "L1+L2 lookup and request-issue cost, cycles",
        ACCESS_INT(s.channel.system.timing.privMissOverhead)));
    add(makeNumeric("system.timing.llc_service", Type::integer, 1,
                    10000, "LLC tag+data access and reply, cycles",
                    ACCESS_INT(s.channel.system.timing.llcService)));
    add(makeNumeric("system.timing.owner_fwd", Type::integer, 0,
                    10000, "LLC -> owner cache -> reply hop, cycles",
                    ACCESS_INT(s.channel.system.timing.ownerFwd)));
    add(makeNumeric(
        "system.timing.qpi_round_trip", Type::integer, 0, 10000,
        "cross-socket link round trip, cycles",
        ACCESS_INT(s.channel.system.timing.qpiRoundTrip)));
    add(makeNumeric(
        "system.timing.remote_owner_fwd", Type::integer, 0, 10000,
        "remote LLC -> remote owner hop, cycles",
        ACCESS_INT(s.channel.system.timing.remoteOwnerFwd)));
    add(makeNumeric(
        "system.timing.dram_service", Type::integer, 1, 100000,
        "memory controller + DRAM service, cycles",
        ACCESS_INT(s.channel.system.timing.dramService)));
    add(makeNumeric("system.timing.flush_base", Type::integer, 1,
                    10000, "clflush issue + global invalidate, cycles",
                    ACCESS_INT(s.channel.system.timing.flushBase)));
    add(makeNumeric(
        "system.timing.flush_dirty_extra", Type::integer, 0, 10000,
        "extra flush cost when dirty data writes back, cycles",
        ACCESS_INT(s.channel.system.timing.flushDirtyExtra)));
    add(makeNumeric("system.timing.upgrade_lat", Type::integer, 0,
                    10000, "S->M invalidation round, cycles",
                    ACCESS_INT(s.channel.system.timing.upgradeLat)));
    add(makeNumeric(
        "system.timing.invalidate_lat", Type::integer, 0, 10000,
        "RFO invalidation cost, cycles",
        ACCESS_INT(s.channel.system.timing.invalidateLat)));
    add(makeNumeric(
        "system.timing.cow_fault_lat", Type::integer, 0, 1000000,
        "OS copy-on-write fault handling, cycles",
        ACCESS_INT(s.channel.system.timing.cowFaultLat)));

    // --- system.timing: jitter and contention --------------------------
    add(makeNumeric("system.timing.jitter_sd", Type::real, 0, 1000,
                    "gaussian sd around each path latency",
                    ACCESS_REAL(s.channel.system.timing.jitterSd)));
    add(makeNumeric(
        "system.timing.long_tail_prob", Type::real, 0, 1,
        "chance of a TLB-walk/IRQ long tail per timed op",
        ACCESS_REAL(s.channel.system.timing.longTailProb)));
    add(makeNumeric("system.timing.long_tail_min", Type::integer, 0,
                    100000, "long-tail extra delay lower bound",
                    ACCESS_INT(s.channel.system.timing.longTailMin)));
    add(makeNumeric("system.timing.long_tail_max", Type::integer, 0,
                    100000, "long-tail extra delay upper bound",
                    ACCESS_INT(s.channel.system.timing.longTailMax)));
    add(makeNumeric("system.timing.llc_port_busy", Type::integer, 0,
                    10000, "LLC port occupancy per access, cycles",
                    ACCESS_INT(s.channel.system.timing.llcPortBusy)));
    add(makeNumeric("system.timing.qpi_busy", Type::integer, 0,
                    10000, "QPI link occupancy per crossing, cycles",
                    ACCESS_INT(s.channel.system.timing.qpiBusy)));
    add(makeNumeric("system.timing.dram_busy", Type::integer, 0,
                    10000, "DRAM channel occupancy per access, cycles",
                    ACCESS_INT(s.channel.system.timing.dramBusy)));
    add(makeNumeric(
        "system.timing.snoop_overhead", Type::integer, 0, 10000,
        "extra private-miss cycles under snoop lookup",
        ACCESS_INT(s.channel.system.timing.snoopOverhead)));
    add(makeNumeric(
        "system.timing.contention_mean", Type::real, 0, 10000,
        "mean utilization-scaled interference delay",
        ACCESS_REAL(s.channel.system.timing.contentionMean)));
    add(makeNumeric(
        "system.timing.contention_sd", Type::real, 0, 10000,
        "sd of the utilization-scaled interference delay",
        ACCESS_REAL(s.channel.system.timing.contentionSd)));
    add(makeNumeric(
        "system.timing.excl_path_contention", Type::real, 0, 100,
        "contention multiplier on owner-forward paths",
        ACCESS_REAL(s.channel.system.timing.exclPathContention)));
    add(makeNumeric(
        "system.timing.uncore_coupling", Type::real, 0, 1,
        "fraction of DRAM pressure felt by every miss",
        ACCESS_REAL(s.channel.system.timing.uncoreCoupling)));
    add(makeNumeric(
        "system.timing.contention_tau", Type::real, 1, 1e9,
        "time constant of the utilization estimate, cycles",
        ACCESS_REAL(s.channel.system.timing.contentionTau)));
    add(makeFlag(
        "system.timing.numa_interleave",
        "home-interleave physical lines across sockets",
        ACCESS_BOOL(s.channel.system.timing.numaInterleave)));
    add(makeNumeric(
        "system.timing.numa_remote_extra", Type::integer, 0, 10000,
        "extra latency for remote-homed DRAM access, cycles",
        ACCESS_INT(s.channel.system.timing.numaRemoteExtra)));
    add(makeFlag(
        "system.timing.llc_notified_of_upgrade",
        "mitigation 3: LLC serves E-state reads directly",
        ACCESS_BOOL(
            s.channel.system.timing.llcNotifiedOfUpgrade)));

    // --- mem: pluggable hierarchy and randomized defenses ---------------
    // Registered after system.* so mem.inclusivity wins over the
    // legacy system.llc_inclusive alias on config round-trips.
    add(makeChoice(
        "mem.replacement", {"lru", "plru", "random", "srrip"},
        "cache replacement policy, all levels",
        [](const ExperimentSpec &s) -> FieldValue {
            return std::string(
                replPolicyName(s.channel.system.replacement));
        },
        [](ExperimentSpec &s, const FieldValue &v) {
            const std::string &n = std::get<std::string>(v);
            s.channel.system.replacement =
                n == "plru"     ? ReplPolicy::plru
                : n == "random" ? ReplPolicy::random
                : n == "srrip"  ? ReplPolicy::srrip
                                : ReplPolicy::lru;
        },
        {"replacement"}));
    add(makeChoice(
        "mem.inclusivity", {"inclusive", "nine", "exclusive"},
        "LLC inclusion policy (inclusive / NINE / victim-cache "
        "exclusive)",
        [](const ExperimentSpec &s) -> FieldValue {
            return std::string(
                inclusivityName(s.channel.system.inclusivity));
        },
        [](ExperimentSpec &s, const FieldValue &v) {
            const std::string &n = std::get<std::string>(v);
            s.channel.system.inclusivity =
                n == "nine"        ? Inclusivity::nine
                : n == "exclusive" ? Inclusivity::exclusive
                                   : Inclusivity::inclusive;
        },
        {"inclusivity"}));
    add(makeChoice(
        "mem.llc_index", {"linear", "xor-fold", "remap", "mirage"},
        "LLC set index function (linear / slice hash / randomized "
        "defenses)",
        [](const ExperimentSpec &s) -> FieldValue {
            return std::string(
                indexFnName(s.channel.system.llcIndex));
        },
        [](ExperimentSpec &s, const FieldValue &v) {
            const std::string &n = std::get<std::string>(v);
            s.channel.system.llcIndex =
                n == "xor-fold" ? IndexFn::xorFold
                : n == "remap"  ? IndexFn::remap
                : n == "mirage" ? IndexFn::mirage
                                : IndexFn::linear;
        },
        {"llc_index", "index"}));
    add(makeNumeric(
        "mem.remap_period", Type::integer, 100, big,
        "LLC-side operations between index rekeys (remap mode)",
        ACCESS_INT(s.channel.system.remapPeriod),
        {"remap_period"}));

    // --- channel: scenario and transmission setup ----------------------
    add(makeChoice(
        "channel.vector", {"coherence", "dirty", "lru", "pagefault"},
        "leakage vector carrying the bits (channel/vector.hh): "
        "coherence-state timing, dirty-state writeback timing, "
        "replacement-metadata (LRU) eviction, or KSM copy-on-write "
        "fault timing",
        [](const ExperimentSpec &s) -> FieldValue {
            return std::string(vectorName(s.channel.vector));
        },
        [](ExperimentSpec &s, const FieldValue &v) {
            s.channel.vector =
                vectorFromName(std::get<std::string>(v));
        },
        {"vector"}));
    {
        std::vector<std::string> notations;
        for (const ScenarioInfo &sc : allScenarios())
            notations.push_back(sc.notation);
        add(makeChoice(
            "channel.scenario", std::move(notations),
            "Table I attack scenario (notation or row 1-6)",
            [](const ExperimentSpec &s) -> FieldValue {
                return std::string(
                    scenarioInfo(s.channel.scenario).notation);
            },
            [](ExperimentSpec &s, const FieldValue &v) {
                s.channel.scenario =
                    scenarioFromName(std::get<std::string>(v));
            },
            {"scenario"}));
    }
    add(makeChoice("channel.sharing", {"explicit", "ksm"},
                   "how trojan and spy obtain the shared page",
                   [](const ExperimentSpec &s) -> FieldValue {
                       return std::string(
                           sharingModeName(s.channel.sharing));
                   },
                   [](ExperimentSpec &s, const FieldValue &v) {
                       s.channel.sharing =
                           std::get<std::string>(v) == "ksm"
                               ? SharingMode::ksm
                               : SharingMode::explicitShared;
                   },
                   {"sharing"}));
    add(makeNumeric("channel.noise_threads", Type::integer, 0, 64,
                    "co-located kernel-build noise threads",
                    ACCESS_INT(s.channel.noiseThreads), {"noise"}));
    add(makeChoice(
        "channel.defense",
        {"none", "targeted-noise", "ksm-guard", "llc-notify"},
        "deployed defence (paper Section VIII-E)",
        [](const ExperimentSpec &s) -> FieldValue {
            return std::string(defenseName(s.channel.defense));
        },
        [](ExperimentSpec &s, const FieldValue &v) {
            const std::string &n = std::get<std::string>(v);
            s.channel.defense = n == "targeted-noise"
                                    ? Defense::targetedNoise
                                : n == "ksm-guard"
                                    ? Defense::ksmGuard
                                : n == "llc-notify"
                                    ? Defense::llcNotify
                                    : Defense::none;
        },
        {"defense"}));
    add(makeNumeric(
        "channel.rate_kbps", Type::real, 0, 100000,
        "target raw rate; > 0 derives ts/helper_gap/poll_interval",
        ACCESS_REAL(s.rateKbps), {"rate"}));
    add(makeNumeric("channel.timeout", Type::integer, 1, big,
                    "safety stop, cycles",
                    ACCESS_INT(s.channel.timeout), {"timeout"}));
    add(makeNumeric(
        "channel.timeout_margin", Type::real, 0, 1000,
        "> 0: derive the timeout from the payload with this margin",
        ACCESS_REAL(s.timeoutMargin)));

    // --- channel: protocol counters and intervals -----------------------
    add(makeNumeric("channel.c1", Type::integer, 1, 1000,
                    "CSc sample periods encoding a '1' bit",
                    ACCESS_INT(s.channel.params.c1)));
    add(makeNumeric("channel.c0", Type::integer, 1, 1000,
                    "CSc sample periods encoding a '0' bit",
                    ACCESS_INT(s.channel.params.c0)));
    add(makeNumeric("channel.cb", Type::integer, 1, 1000,
                    "CSb sample periods delimiting bits",
                    ACCESS_INT(s.channel.params.cb)));
    add(makeNumeric("channel.ts", Type::integer, 1, 1000000,
                    "spy wait between flush and timed reload, cycles",
                    ACCESS_INT(s.channel.params.ts)));
    add(makeNumeric("channel.end_n", Type::integer, 1, 1000,
                    "out-of-band samples ending reception",
                    ACCESS_INT(s.channel.params.endN)));
    add(makeNumeric("channel.helper_gap", Type::integer, 1, 100000,
                    "trojan loader re-load gap, cycles",
                    ACCESS_INT(s.channel.params.helperGap)));
    add(makeNumeric("channel.poll_interval", Type::integer, 1,
                    100000, "trojan helper polling granularity",
                    ACCESS_INT(s.channel.params.pollInterval)));
    add(makeNumeric("channel.band_widen", Type::real, 0, 1000,
                    "cycles beyond calibrated band edges accepted",
                    ACCESS_REAL(s.channel.params.bandWiden)));
    add(makeNumeric("channel.gap_claim", Type::real, 0, 1,
                    "fraction of the inter-band gap each band claims",
                    ACCESS_REAL(s.channel.params.gapClaim)));

    // --- PHY channel stack (src/phy) -------------------------------------
    add(makeChoice(
        "phy.profile",
        {"legacy-parity", "hamming-hard", "hamming-soft"},
        "channel coding stack: the paper's parity+NACK scheme, or "
        "the framed whiten/interleave/Hamming(8,4) stack with hard "
        "or soft-decision decoding",
        [](const ExperimentSpec &s) -> FieldValue {
            return std::string(
                phyProfileName(s.channel.phy.profile));
        },
        [](ExperimentSpec &s, const FieldValue &v) {
            PhyProfile p = PhyProfile::legacyParity;
            phyProfileFromName(std::get<std::string>(v).c_str(), p);
            s.channel.phy.profile = p;
        },
        {"profile"}));
    add(makeNumeric("phy.interleaver_depth", Type::integer, 1, 64,
                    "block interleaver depth, wire bits (1: off); "
                    "a depth-long burst hits each codeword once",
                    ACCESS_INT(s.channel.phy.interleaverDepth)));
    add(makeNumeric("phy.preamble_len", Type::integer, 8, 64,
                    "correlation preamble length, wire bits "
                    "(Barker-13 derived)",
                    ACCESS_INT(s.channel.phy.preambleLen)));
    add(makeFlag("phy.whiten",
                 "PN9-whiten frame bodies to break payload runs",
                 ACCESS_BOOL(s.channel.phy.whiten)));
    add(makeFlag("phy.adaptive",
                 "pick profile and raw rate from calibrated band "
                 "separation (overrides phy.profile when it picks)",
                 ACCESS_BOOL(s.channel.phy.adaptive), {"adaptive"}));
    add(makeNumeric("phy.frame_nibbles", Type::integer, 4, 256,
                    "payload nibbles per frame body (x8 wire bits "
                    "after FEC)",
                    ACCESS_INT(s.channel.phy.frameNibbles)));

    // --- noise workload -------------------------------------------------
    add(makeNumeric("noise.buffer_bytes", Type::integer, 4096, big,
                    "per-agent working buffer size",
                    ACCESS_INT(s.channel.noise.bufferBytes)));
    add(makeNumeric("noise.stream_burst", Type::integer, 1, 100000,
                    "lines touched per streaming burst",
                    ACCESS_INT(s.channel.noise.streamBurst)));
    add(makeNumeric("noise.random_burst", Type::integer, 1, 100000,
                    "lines touched per random burst",
                    ACCESS_INT(s.channel.noise.randomBurst)));
    add(makeNumeric(
        "noise.store_fraction", Type::real, 0, 1,
        "fraction of random-burst accesses that are stores",
        ACCESS_REAL(s.channel.noise.storeFraction)));
    add(makeNumeric("noise.access_gap", Type::integer, 0, 100000,
                    "idle gap between accesses in a burst, cycles",
                    ACCESS_INT(s.channel.noise.accessGap)));
    add(makeNumeric("noise.inter_burst_gap", Type::integer, 0, big,
                    "blocking pause between bursts, cycles",
                    ACCESS_INT(s.channel.noise.interBurstGap)));
    add(makeNumeric("noise.active_phase", Type::integer, 1, big,
                    "compile-phase duration, cycles",
                    ACCESS_INT(s.channel.noise.activePhase)));
    add(makeNumeric("noise.idle_phase", Type::integer, 1, big,
                    "I/O-phase duration, cycles",
                    ACCESS_INT(s.channel.noise.idlePhase)));

    // --- payload ---------------------------------------------------------
    add(makeText("payload.message",
                 "text payload (used when payload.bits is 0)",
                 ACCESS_TEXT(s.payload.message), {"message"}));
    add(makeNumeric("payload.bits", Type::integer, 0, 10000000,
                    "> 0: seeded random payload of this many bits",
                    ACCESS_INT(s.payload.bits), {"bits"}));

    // --- sweep grid ------------------------------------------------------
    add(makeNumeric("sweep.from_kbps", Type::real, 0, 100000,
                    "rate axis start (with to/step), Kbps",
                    ACCESS_REAL(s.sweep.fromKbps), {"from"}));
    add(makeNumeric("sweep.to_kbps", Type::real, 0, 100000,
                    "rate axis end (inclusive), Kbps",
                    ACCESS_REAL(s.sweep.toKbps), {"to"}));
    add(makeNumeric("sweep.step_kbps", Type::real, 0, 100000,
                    "rate axis step, Kbps",
                    ACCESS_REAL(s.sweep.stepKbps), {"step"}));
    add(makeText("sweep.rates",
                 "explicit rate list (CSV, Kbps); overrides "
                 "from/to/step",
                 ACCESS_TEXT(s.sweep.rates)));
    add(makeText("sweep.scenarios",
                 "scenario axis: CSV of notations/rows, or \"all\"",
                 ACCESS_TEXT(s.sweep.scenarios)));
    add(makeText("sweep.noise_levels",
                 "noise axis: CSV of thread counts",
                 ACCESS_TEXT(s.sweep.noiseLevels)));

    // --- multi-tenant fleet ----------------------------------------------
    add(makeNumeric("fleet.pairs", Type::integer, 1, 64,
                    "concurrent trojan/spy pairs on one machine "
                    "(> 1 runs the fleet path)",
                    ACCESS_INT(s.fleet.pairs), {"pairs"}));
    add(makeNumeric("fleet.noise_agents", Type::integer, 0, 64,
                    "fleet-wide co-tenant noise agents",
                    ACCESS_INT(s.fleet.noiseAgents)));
    add(makeNumeric("fleet.stagger_cycles", Type::integer, 0, big,
                    "start-offset spacing between consecutive "
                    "pairs, cycles",
                    ACCESS_INT(s.fleet.staggerCycles)));
    add(makeText("fleet.scenario_mix",
                 "CSV of Table I notations/rows cycled over the "
                 "pairs (empty: every pair runs channel.scenario)",
                 ACCESS_TEXT(s.fleet.scenarioMix)));

    // --- run-health observability (cohersim report) ----------------------
    add(makeNumeric("obs.window_cycles", Type::integer, 1000, big,
                    "telemetry aggregation window, virtual cycles",
                    ACCESS_INT(s.obs.windowCycles), {"window"}));
    add(makeNumeric("obs.hist_sub_bits", Type::integer, 0, 16,
                    "latency histogram sub-bucket bits (precision "
                    "per power of two)",
                    ACCESS_INT(s.obs.histSubBits)));
    add(makeNumeric("obs.band_core", Type::integer, -1, 4096,
                    "core whose loads feed the latency bands "
                    "(-1: all cores)",
                    ACCESS_INT(s.obs.bandCore)));
    add(makeNumeric("obs.drift_warn_fraction", Type::real, 0, 1,
                    "flag a band when more than this fraction of "
                    "its samples fall outside the calibrated range",
                    ACCESS_REAL(s.obs.driftWarnFraction)));
    add(makeNumeric("obs.pair", Type::integer, -1, 64,
                    "fleet pair whose channel events feed the "
                    "health report (-1: all pairs)",
                    ACCESS_INT(s.obs.pair)));
}

#undef ACCESS_INT
#undef ACCESS_REAL
#undef ACCESS_BOOL
#undef ACCESS_TEXT

} // namespace csim
