#include "config/resolver.hh"

#include "common/logging.hh"
#include "config/presets.hh"
#include "runner/json_sink.hh"

namespace csim
{

namespace
{

const std::string kDefaultSource = "default";

} // namespace

void
ConfigResolver::applyPreset(const std::string &name)
{
    const Preset *preset = findPreset(name);
    if (!preset) {
        std::string known;
        for (const Preset &p : allPresets()) {
            if (!known.empty())
                known += ", ";
            known += p.name;
        }
        throw ConfigError(msgCat("unknown preset '", name,
                                 "'; available: ", known));
    }
    csim::applyPreset(spec_, *preset);
    for (const auto &[key, value] : preset->settings) {
        const FieldDef *field = FieldRegistry::instance().find(key);
        provenance_[field->name] = msgCat("preset:", name);
    }
}

void
ConfigResolver::applyJson(const Json &root, const std::string &source)
{
    if (!root.isObject())
        throw ConfigError(msgCat(source,
                                 ": top level must be an object"));

    const FieldRegistry &reg = FieldRegistry::instance();

    // A config file may start from a preset, then override it.
    if (const Json *preset = root.find("preset")) {
        if (!preset->isString())
            throw ConfigError(msgCat(source,
                                     ": 'preset' must be a string"));
        applyPreset(preset->asString());
    }

    // Walk the nested tree; the dotted path of each leaf is the
    // field name.
    std::vector<std::pair<std::string, const Json *>> stack;
    for (const auto &[key, value] : root.entries()) {
        if (key == "preset")
            continue;
        stack.emplace_back(key, &value);
    }
    // Depth-first in document order keeps error messages stable.
    std::vector<std::pair<std::string, const Json *>> leaves;
    while (!stack.empty()) {
        auto [path, node] = stack.back();
        stack.pop_back();
        if (node->isObject()) {
            const auto &members = node->entries();
            for (auto it = members.rbegin(); it != members.rend();
                 ++it)
                stack.emplace_back(path + "." + it->first,
                                   &it->second);
        } else {
            leaves.emplace_back(path, node);
        }
    }
    for (const auto &[path, node] : leaves) {
        const FieldDef *field = reg.find(path);
        if (!field)
            throw ConfigError(reg.unknownKeyMessage(path, source));
        field->set(spec_, reg.fromJson(*field, *node, source));
        provenance_[field->name] = source;
    }
}

void
ConfigResolver::applyFile(const std::string &path)
{
    applyJson(readJsonFile(path), msgCat("file:", path));
}

void
ConfigResolver::applyOverride(const std::string &key,
                              const std::string &value,
                              const std::string &source)
{
    const FieldRegistry &reg = FieldRegistry::instance();
    const FieldDef *field = reg.find(key);
    if (!field)
        throw ConfigError(reg.unknownKeyMessage(key, source));
    field->set(spec_, reg.parse(*field, value));
    provenance_[field->name] = source;
}

const std::string &
ConfigResolver::provenance(const std::string &field) const
{
    const auto it = provenance_.find(field);
    return it == provenance_.end() ? kDefaultSource : it->second;
}

Json
ConfigResolver::toJson() const
{
    const FieldRegistry &reg = FieldRegistry::instance();
    Json root = Json::object();
    for (const FieldDef &f : reg.fields()) {
        // Split "system.timing.l1_hit" into nested objects.
        Json *node = &root;
        std::string rest = f.name;
        for (std::size_t dot = rest.find('.');
             dot != std::string::npos; dot = rest.find('.')) {
            Json &child = (*node)[rest.substr(0, dot)];
            if (!child.isObject())
                child = Json::object();
            node = &child;
            rest = rest.substr(dot + 1);
        }
        (*node)[rest] = reg.toJson(f, spec_);
    }
    return root;
}

void
ConfigResolver::dumpFile(const std::string &path) const
{
    writeJsonFile(path, toJson());
}

} // namespace csim
