/**
 * @file
 * The declarative experiment specification: one value that composes
 * the simulated machine (`SystemConfig`), the covert-channel setup
 * (`ChannelConfig`, `ChannelParams`, `NoiseConfig`), the payload and
 * the sweep grid. Every scenario the CLI and the sweep benches run is
 * an `ExperimentSpec`, so "add a scenario" is a data change (a JSON
 * file or a preset entry), not a C++ change.
 *
 * The companion pieces live next door:
 *  - field_registry.hh — reflection-style field table (name, type,
 *    default, range, doc) driving validation and (de)serialization;
 *  - presets.hh        — named presets (Table I scenarios, §VIII-E
 *    mitigations, the protocol-flavor matrix, bench sweep grids);
 *  - resolver.hh       — layered resolution with provenance
 *    (defaults → preset → config file → CLI overrides).
 */

#ifndef COHERSIM_CONFIG_EXPERIMENT_SPEC_HH
#define COHERSIM_CONFIG_EXPERIMENT_SPEC_HH

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "channel/channel.hh"
#include "channel/fleet.hh"
#include "common/bit_string.hh"
#include "obs/obs_config.hh"

namespace csim
{

/**
 * Configuration error: an unknown key, an out-of-range value, a
 * malformed list. Thrown (not fatal()ed) so callers — the CLI, the
 * benches, the tests — can report or assert on the message, which
 * always names the offending key and value.
 */
class ConfigError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** What the trojan transmits. */
struct PayloadSpec
{
    /** Text payload (used when bits == 0). */
    std::string message = "COHERENCE STATES LEAK";
    /** When > 0: a seeded random payload of this many bits. */
    long bits = 0;
};

/**
 * Sweep-grid axes. An axis left empty contributes the spec's scalar
 * value as a single grid point, so a spec with no sweep settings
 * expands to exactly itself.
 */
struct SweepSpec
{
    /** @name Rate axis: arithmetic progression, in Kbps */
    /** @{ */
    double fromKbps = 0.0;
    double toKbps = 0.0;
    double stepKbps = 0.0;
    /** @} */
    /** Explicit rate list (CSV, Kbps); overrides from/to/step. */
    std::string rates;
    /** Scenario list: CSV of Table I notations or rows, or "all". */
    std::string scenarios;
    /** Noise-thread list (CSV of counts). */
    std::string noiseLevels;
};

/** Multi-tenant fleet axes (`fleet.*` config fields). */
struct FleetSpec
{
    /**
     * Concurrent trojan/spy pairs on one machine; > 1 switches
     * `cohersim transmit` onto the fleet path.
     */
    long pairs = 1;
    /** Fleet-wide co-tenant noise agents. */
    long noiseAgents = 0;
    /** Start-offset spacing between consecutive pairs, cycles. */
    long staggerCycles = 200'000;
    /**
     * CSV of Table I notations/row numbers, cycled over the pairs;
     * empty runs every pair in channel.scenario.
     */
    std::string scenarioMix;
};

/** The complete declarative description of one experiment (family). */
struct ExperimentSpec
{
    /** Machine + channel knobs; `system` lives inside. */
    ChannelConfig channel;
    /**
     * Target raw rate in Kbps; > 0 derives the spy/trojan intervals
     * via ChannelParams::forTargetKbps (overriding channel.ts,
     * helper_gap and poll_interval), 0 uses them as configured.
     */
    double rateKbps = 0.0;
    /**
     * When > 0, the safety timeout is derived from the payload
     * length with this margin (ChannelConfig::deriveTimeout)
     * instead of taken from channel.timeout.
     */
    double timeoutMargin = 0.0;
    PayloadSpec payload;
    SweepSpec sweep;
    /** Multi-tenant fleet axes (`cohersim transmit` fleet path). */
    FleetSpec fleet;
    /** Run-health observability knobs (`cohersim report`). */
    ObsConfig obs;

    /** Number of payload bits this spec transmits. */
    std::size_t payloadBits() const;

    /**
     * Materialize the payload: the seeded random bits (seed + 1,
     * matching the CLI's historical behaviour) or the text message.
     */
    BitString makePayload() const;

    /**
     * Resolve the runnable per-experiment configuration: derive
     * params from rateKbps, apply the llc-notify defence to the
     * timing model, derive the timeout from the payload when a
     * margin is set.
     */
    ChannelConfig toChannelConfig() const;

    /**
     * Resolve the runnable fleet configuration: the resolved
     * per-pair base (toChannelConfig) plus the fleet.* axes, with
     * the scenario mix parsed into Scenario ids. The timeout margin
     * falls back to 20 when unset — fleet timeouts are always
     * contention-derived (ChannelConfig::deriveTimeout), never the
     * raw channel.timeout, because co-resident pairs stretch every
     * transmission. Throws ConfigError on a malformed mix entry.
     */
    FleetConfig toFleetConfig() const;

    /**
     * Check every registry field against its valid range plus the
     * cross-field constraints (c0 < c1, well-formed sweep axes).
     * Throws ConfigError naming the offending key and value.
     */
    void validate() const;
};

/** The expanded axes of a spec's sweep grid. */
struct GridAxes
{
    std::vector<Scenario> scenarios;
    std::vector<double> rates;
    std::vector<int> noiseLevels;

    std::size_t
    size() const
    {
        return scenarios.size() * rates.size() * noiseLevels.size();
    }
};

/**
 * Parse the sweep axes of @p spec (each axis falls back to the
 * scalar field when unset). Throws ConfigError on malformed lists.
 */
GridAxes sweepAxes(const ExperimentSpec &spec);

/**
 * Expand a spec into one spec per grid point, scenario-major, then
 * rate, then noise level — the iteration order every sweep bench
 * uses. The returned specs have their sweep axes cleared, so they
 * are plain single-experiment specs (and expandGrid is idempotent).
 */
std::vector<ExperimentSpec> expandGrid(const ExperimentSpec &spec);

} // namespace csim

#endif // COHERSIM_CONFIG_EXPERIMENT_SPEC_HH
