/**
 * @file
 * Bit-string helpers: conversion between bytes and bit vectors, random
 * patterns, and rendering — the payload format moved over the covert
 * channel.
 */

#ifndef COHERSIM_COMMON_BIT_STRING_HH
#define COHERSIM_COMMON_BIT_STRING_HH

#include <cstdint>
#include <string>
#include <vector>

namespace csim
{

class Rng;

/** A sequence of bits, most significant bit of each byte first. */
using BitString = std::vector<std::uint8_t>;

/** Generate a random bit pattern of the given length. */
BitString randomBits(Rng &rng, std::size_t n);

/** Expand bytes into their bit representation (MSB first). */
BitString bytesToBits(const std::vector<std::uint8_t> &bytes);

/** Expand a text string into bits (MSB first per character). */
BitString textToBits(const std::string &text);

/**
 * Pack bits back into bytes (MSB first); trailing bits that do not
 * fill a whole byte are dropped.
 */
std::vector<std::uint8_t> bitsToBytes(const BitString &bits);

/** Decode bits into text; unprintable bytes become '?'. */
std::string bitsToText(const BitString &bits);

/** Render as a "0101..." string. */
std::string bitsToString(const BitString &bits);

/** Parse a "0101..." string; non-0/1 characters are skipped. */
BitString bitsFromString(const std::string &s);

/**
 * Pack a vector of k-bit symbols into a bit string (MSB of each symbol
 * first). Symbols must fit in bitsPerSymbol bits.
 */
BitString symbolsToBits(const std::vector<int> &symbols,
                        int bitsPerSymbol);

/** Split a bit string into k-bit symbols; trailing bits are dropped. */
std::vector<int> bitsToSymbols(const BitString &bits, int bitsPerSymbol);

} // namespace csim

#endif // COHERSIM_COMMON_BIT_STRING_HH
