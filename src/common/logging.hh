/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() flags an internal simulator bug and aborts; fatal() flags a
 * user/configuration error and exits cleanly; warn()/inform() report
 * conditions without stopping the simulation.
 */

#ifndef COHERSIM_COMMON_LOGGING_HH
#define COHERSIM_COMMON_LOGGING_HH

#include <atomic>
#include <sstream>
#include <string>

namespace csim
{

/** Internal sinks; exposed so tests can capture output. */
namespace logging_detail
{
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/**
 * When true, warn()/inform() are suppressed (quiet benches). Atomic
 * so runner worker threads may consult it while another thread (e.g.
 * a bench main) toggles it; the sinks themselves serialize writes so
 * concurrent simulations never interleave mid-line.
 */
extern std::atomic<bool> quiet;
} // namespace logging_detail

/** Build a message from stream-style arguments. */
template <typename... Args>
std::string
msgCat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace csim

/** Abort on an internal invariant violation (simulator bug). */
#define panic(...)                                                         \
    ::csim::logging_detail::panicImpl(__FILE__, __LINE__,                  \
                                      ::csim::msgCat(__VA_ARGS__))

/** Exit on an unrecoverable user/configuration error. */
#define fatal(...)                                                         \
    ::csim::logging_detail::fatalImpl(__FILE__, __LINE__,                  \
                                      ::csim::msgCat(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
#define warn(...)                                                          \
    ::csim::logging_detail::warnImpl(::csim::msgCat(__VA_ARGS__))

/** Report normal operating status. */
#define inform(...)                                                        \
    ::csim::logging_detail::informImpl(::csim::msgCat(__VA_ARGS__))

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                                \
    do {                                                                   \
        if (cond)                                                          \
            panic(__VA_ARGS__);                                            \
    } while (0)

/** fatal() unless the condition holds. */
#define fatal_if(cond, ...)                                                \
    do {                                                                   \
        if (cond)                                                          \
            fatal(__VA_ARGS__);                                            \
    } while (0)

#endif // COHERSIM_COMMON_LOGGING_HH
