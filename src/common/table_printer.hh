/**
 * @file
 * Aligned console tables for the benchmark harnesses that regenerate
 * the paper's tables and figure series.
 */

#ifndef COHERSIM_COMMON_TABLE_PRINTER_HH
#define COHERSIM_COMMON_TABLE_PRINTER_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace csim
{

/**
 * Accumulates rows of string cells and prints them with columns padded
 * to the widest cell, in a GitHub-markdown-ish layout that is easy to
 * diff against the paper's tables.
 */
class TablePrinter
{
  public:
    /** Set the header row. */
    void header(std::initializer_list<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 1);

    /** Format a percentage (0..1 input) like "97.3%". */
    static std::string pct(double frac, int precision = 1);

    /** Print the accumulated table. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace csim

#endif // COHERSIM_COMMON_TABLE_PRINTER_HH
