#include "common/logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace csim
{
namespace logging_detail
{

bool quiet = false;

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    // Throw instead of abort() so gtest death-free tests can verify
    // invariant checks fire; uncaught it still terminates the process.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quiet)
        std::cout << "info: " << msg << std::endl;
}

} // namespace logging_detail
} // namespace csim
