#include "common/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace csim
{
namespace logging_detail
{

std::atomic<bool> quiet{false};

namespace
{
/**
 * Serializes every sink write: the simulator is embeddable
 * many-per-process (parallel sweep runner), and interleaved partial
 * lines from concurrent Machines would be unreadable.
 */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}
} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lk(sinkMutex());
        std::cerr << "panic: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
    // Throw instead of abort() so gtest death-free tests can verify
    // invariant checks fire; uncaught it still terminates the process.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lk(sinkMutex());
        std::cerr << "fatal: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lk(sinkMutex());
        std::cerr << "warn: " << msg << std::endl;
    }
}

void
informImpl(const std::string &msg)
{
    if (!quiet.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lk(sinkMutex());
        std::cout << "info: " << msg << std::endl;
    }
}

} // namespace logging_detail
} // namespace csim
