#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace csim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t index)
{
    // splitmix64 at stream position `index` of the sequence seeded by
    // `base` (Vigna's reference constants).
    std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    panic_if(bound == 0, "Rng::below called with zero bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    panic_if(lo > hi, "Rng::range called with lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next()
                                                    : below(span));
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::gaussian(double mean, double sd)
{
    if (haveSpare_) {
        haveSpare_ = false;
        return mean + sd * spare_;
    }
    // Marsaglia polar method.
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    haveSpare_ = true;
    return mean + sd * u * m;
}

} // namespace csim
