/**
 * @file
 * Sample collection and summary statistics used by calibration and the
 * benchmark harnesses (CDFs, percentiles, means, histograms).
 */

#ifndef COHERSIM_COMMON_STATS_HH
#define COHERSIM_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace csim
{

/**
 * A collection of scalar samples (e.g. load latencies in cycles) with
 * summary queries. Samples are stored verbatim; queries sort lazily.
 */
class SampleSet
{
  public:
    /** Add one sample. */
    void add(double v);

    /** Number of samples collected. */
    std::size_t count() const { return samples_.size(); }

    /** Arithmetic mean; 0 if empty. */
    double mean() const;

    /**
     * Sample standard deviation (Bessel-corrected, N-1 divisor);
     * 0 if fewer than 2 samples.
     */
    double stddev() const;

    double min() const;
    double max() const;

    /**
     * Percentile via nearest-rank on the sorted samples.
     *
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Median (50th percentile). */
    double median() const { return percentile(50.0); }

    /**
     * Empirical CDF evaluated over the sample range.
     *
     * @param points number of (value, cumulative fraction) pairs.
     * @return pairs with monotonically non-decreasing fractions.
     */
    std::vector<std::pair<double, double>> cdf(std::size_t points) const;

    /** Fraction of samples inside [lo, hi]. */
    double fractionWithin(double lo, double hi) const;

    /** Raw access for custom processing. */
    const std::vector<double> &values() const { return samples_; }

    /** Remove all samples. */
    void clear();

  private:
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;
};

/**
 * Fixed-width bucket histogram over [lo, hi); out-of-range samples are
 * clamped into the first/last bucket.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double v);

    std::size_t bucketCount() const { return counts_.size(); }
    std::uint64_t bucketValue(std::size_t i) const { return counts_[i]; }
    /** Inclusive lower edge of bucket i. */
    double bucketLo(std::size_t i) const;
    std::uint64_t total() const { return total_; }

    /** Render a one-line ASCII sparkline of the histogram. */
    std::string sparkline() const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace csim

#endif // COHERSIM_COMMON_STATS_HH
