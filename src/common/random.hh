/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * A small xoshiro256** implementation is used instead of <random>
 * engines so that simulation results are bit-identical across
 * standard-library implementations.
 */

#ifndef COHERSIM_COMMON_RANDOM_HH
#define COHERSIM_COMMON_RANDOM_HH

#include <cstdint>

namespace csim
{

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * All simulator randomness (timing jitter, workload address streams,
 * transmitted bit patterns) flows through instances of this class so a
 * run is fully reproducible from its seeds.
 */
/**
 * Decorrelated per-job seed: one splitmix64 step of the base seed at
 * stream position @p index. Bit-exact on every platform, and jobs
 * with adjacent indices get statistically independent streams. Both
 * the host-parallel runner and the fleet orchestrator derive their
 * per-unit seeds through this, so results never depend on execution
 * order.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t index);

class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double sd);

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace csim

#endif // COHERSIM_COMMON_RANDOM_HH
