/**
 * @file
 * Levenshtein edit distance between bit strings.
 *
 * The paper's raw-bit accuracy accounts for three reception error
 * modes: lost bits, duplicated bits and flipped bits (§VIII-B). Edit
 * distance with unit insert/delete/substitute costs captures exactly
 * these, so raw accuracy = 1 - distance / transmitted length.
 */

#ifndef COHERSIM_COMMON_EDIT_DISTANCE_HH
#define COHERSIM_COMMON_EDIT_DISTANCE_HH

#include <cstddef>

#include "common/bit_string.hh"

namespace csim
{

/** Unit-cost Levenshtein distance between two bit strings. */
std::size_t editDistance(const BitString &a, const BitString &b);

/**
 * Raw bit accuracy as defined in the paper: the fraction of
 * transmitted raw bits correctly recovered by the spy.
 *
 * @param sent bits the trojan transmitted.
 * @param received bits the spy decoded.
 * @return value in [0, 1]; 1 when received == sent.
 */
double rawBitAccuracy(const BitString &sent, const BitString &received);

} // namespace csim

#endif // COHERSIM_COMMON_EDIT_DISTANCE_HH
