#include "common/bit_string.hh"

#include <cctype>

#include "common/logging.hh"
#include "common/random.hh"

namespace csim
{

BitString
randomBits(Rng &rng, std::size_t n)
{
    BitString bits(n);
    for (auto &b : bits)
        b = static_cast<std::uint8_t>(rng.next() & 1);
    return bits;
}

BitString
bytesToBits(const std::vector<std::uint8_t> &bytes)
{
    BitString bits;
    bits.reserve(bytes.size() * 8);
    for (std::uint8_t byte : bytes)
        for (int i = 7; i >= 0; --i)
            bits.push_back((byte >> i) & 1);
    return bits;
}

BitString
textToBits(const std::string &text)
{
    return bytesToBits(
        std::vector<std::uint8_t>(text.begin(), text.end()));
}

std::vector<std::uint8_t>
bitsToBytes(const BitString &bits)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(bits.size() / 8);
    for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
        std::uint8_t byte = 0;
        for (std::size_t j = 0; j < 8; ++j)
            byte = static_cast<std::uint8_t>((byte << 1) |
                                             (bits[i + j] & 1));
        bytes.push_back(byte);
    }
    return bytes;
}

std::string
bitsToText(const BitString &bits)
{
    std::string out;
    for (std::uint8_t byte : bitsToBytes(bits))
        out.push_back(std::isprint(byte) ? static_cast<char>(byte)
                                         : '?');
    return out;
}

std::string
bitsToString(const BitString &bits)
{
    std::string s;
    s.reserve(bits.size());
    for (auto b : bits)
        s.push_back(b ? '1' : '0');
    return s;
}

BitString
bitsFromString(const std::string &s)
{
    BitString bits;
    for (char c : s) {
        if (c == '0')
            bits.push_back(0);
        else if (c == '1')
            bits.push_back(1);
    }
    return bits;
}

BitString
symbolsToBits(const std::vector<int> &symbols, int bitsPerSymbol)
{
    panic_if(bitsPerSymbol <= 0 || bitsPerSymbol > 16,
             "unsupported bits per symbol: ", bitsPerSymbol);
    BitString bits;
    bits.reserve(symbols.size() * bitsPerSymbol);
    for (int sym : symbols) {
        panic_if(sym < 0 || sym >= (1 << bitsPerSymbol),
                 "symbol ", sym, " does not fit in ", bitsPerSymbol,
                 " bits");
        for (int i = bitsPerSymbol - 1; i >= 0; --i)
            bits.push_back((sym >> i) & 1);
    }
    return bits;
}

std::vector<int>
bitsToSymbols(const BitString &bits, int bitsPerSymbol)
{
    panic_if(bitsPerSymbol <= 0 || bitsPerSymbol > 16,
             "unsupported bits per symbol: ", bitsPerSymbol);
    std::vector<int> symbols;
    const std::size_t step = static_cast<std::size_t>(bitsPerSymbol);
    for (std::size_t i = 0; i + step <= bits.size(); i += step) {
        int sym = 0;
        for (std::size_t j = 0; j < step; ++j)
            sym = (sym << 1) | (bits[i + j] & 1);
        symbols.push_back(sym);
    }
    return symbols;
}

} // namespace csim
