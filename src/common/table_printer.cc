#include "common/table_printer.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace csim
{

void
TablePrinter::header(std::initializer_list<std::string> cells)
{
    header_.assign(cells);
}

void
TablePrinter::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TablePrinter::pct(double frac, int precision)
{
    return num(frac * 100.0, precision) + "%";
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell =
                i < cells.size() ? cells[i] : std::string();
            os << " " << cell
               << std::string(widths[i] - cell.size(), ' ') << " |";
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        os << "|";
        for (auto w : widths)
            os << std::string(w + 2, '-') << "|";
        os << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    os.flush();
}

} // namespace csim
