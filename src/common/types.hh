/**
 * @file
 * Fundamental scalar types used across the CoherSim libraries.
 */

#ifndef COHERSIM_COMMON_TYPES_HH
#define COHERSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace csim
{

/** Simulated time, in CPU cycles of the reference clock. */
using Tick = std::uint64_t;

/** Virtual address within a simulated process. */
using VAddr = std::uint64_t;

/** Physical address in the simulated machine. */
using PAddr = std::uint64_t;

/** Core index, globally unique across sockets. */
using CoreId = int;

/** Socket (processor package) index. */
using SocketId = int;

/** Simulated-thread identifier. */
using ThreadId = int;

/** Simulated-process identifier. */
using ProcessId = int;

/** Sentinel for "no tick". */
inline constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel core/socket/thread ids. */
inline constexpr CoreId invalidCore = -1;
inline constexpr SocketId invalidSocket = -1;
inline constexpr ThreadId invalidThread = -1;

/** Cache line size used throughout the simulated machine, in bytes. */
inline constexpr unsigned lineBytes = 64;

/** Page size used by the simulated OS, in bytes. */
inline constexpr unsigned pageBytes = 4096;

/** Align an address down to its cache-line base. */
constexpr PAddr
lineAlign(PAddr addr)
{
    return addr & ~static_cast<PAddr>(lineBytes - 1);
}

/** Align an address down to its page base. */
constexpr PAddr
pageAlign(PAddr addr)
{
    return addr & ~static_cast<PAddr>(pageBytes - 1);
}

/** Offset of an address within its page. */
constexpr unsigned
pageOffset(PAddr addr)
{
    return static_cast<unsigned>(addr & (pageBytes - 1));
}

} // namespace csim

#endif // COHERSIM_COMMON_TYPES_HH
