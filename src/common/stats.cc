#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.hh"

namespace csim
{

void
SampleSet::add(double v)
{
    samples_.push_back(v);
    sortedValid_ = false;
}

void
SampleSet::clear()
{
    samples_.clear();
    sorted_.clear();
    sortedValid_ = false;
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : samples_)
        sum += v;
    return sum / samples_.size();
}

double
SampleSet::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : samples_)
        acc += (v - m) * (v - m);
    // Bessel-corrected (N-1) sample estimator: these are always
    // samples drawn from the latency distribution, never the whole
    // population, and the population divisor understates the
    // calibration band sigma.
    return std::sqrt(acc / (samples_.size() - 1));
}

double
SampleSet::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleSet::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

void
SampleSet::ensureSorted() const
{
    if (!sortedValid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sortedValid_ = true;
    }
}

double
SampleSet::percentile(double p) const
{
    panic_if(p < 0.0 || p > 100.0, "percentile out of range: ", p);
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (p <= 0.0)
        return sorted_.front();
    // Nearest-rank definition.
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * sorted_.size()));
    return sorted_[std::min(rank, sorted_.size()) - 1];
}

std::vector<std::pair<double, double>>
SampleSet::cdf(std::size_t points) const
{
    std::vector<std::pair<double, double>> out;
    if (samples_.empty() || points == 0)
        return out;
    ensureSorted();
    out.reserve(points);
    const double lo = sorted_.front();
    const double hi = sorted_.back();
    const double step = points > 1 ? (hi - lo) / (points - 1) : 0.0;
    for (std::size_t i = 0; i < points; ++i) {
        const double x = lo + step * i;
        const auto it =
            std::upper_bound(sorted_.begin(), sorted_.end(), x);
        const double frac = static_cast<double>(it - sorted_.begin()) /
                            sorted_.size();
        out.emplace_back(x, frac);
    }
    return out;
}

double
SampleSet::fractionWithin(double lo, double hi) const
{
    if (samples_.empty())
        return 0.0;
    std::size_t n = 0;
    for (double v : samples_)
        if (v >= lo && v <= hi)
            ++n;
    return static_cast<double>(n) / samples_.size();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    panic_if(buckets == 0, "Histogram needs at least one bucket");
    panic_if(hi <= lo, "Histogram range is empty: [", lo, ", ", hi, ")");
}

void
Histogram::add(double v)
{
    const double width = (hi_ - lo_) / counts_.size();
    auto idx = static_cast<std::int64_t>((v - lo_) / width);
    idx = std::clamp<std::int64_t>(idx, 0,
                                   static_cast<std::int64_t>(
                                       counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::bucketLo(std::size_t i) const
{
    const double width = (hi_ - lo_) / counts_.size();
    return lo_ + width * i;
}

std::string
Histogram::sparkline() const
{
    static const char levels[] = " .:-=+*#%@";
    std::uint64_t peak = 0;
    for (auto c : counts_)
        peak = std::max(peak, c);
    std::string out;
    out.reserve(counts_.size());
    for (auto c : counts_) {
        if (peak == 0) {
            out.push_back(' ');
        } else {
            const std::size_t lvl = (c * 9 + peak - 1) / peak;
            out.push_back(levels[std::min<std::size_t>(lvl, 9)]);
        }
    }
    return out;
}

} // namespace csim
