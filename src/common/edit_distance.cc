#include "common/edit_distance.hh"

#include <algorithm>
#include <vector>

namespace csim
{

std::size_t
editDistance(const BitString &a, const BitString &b)
{
    // Two-row dynamic program; O(|a|*|b|) time, O(|b|) space.
    const std::size_t n = b.size();
    std::vector<std::size_t> prev(n + 1), cur(n + 1);
    for (std::size_t j = 0; j <= n; ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= n; ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[n];
}

double
rawBitAccuracy(const BitString &sent, const BitString &received)
{
    if (sent.empty())
        return received.empty() ? 1.0 : 0.0;
    const std::size_t dist = editDistance(sent, received);
    const double acc =
        1.0 - static_cast<double>(dist) / static_cast<double>(
                                              sent.size());
    return std::max(0.0, acc);
}

} // namespace csim
