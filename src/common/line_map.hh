/**
 * @file
 * Open-addressed hash map from line-aligned physical addresses to
 * 32-bit presence/residency bit vectors.
 *
 * The coherence hot path consults the home-agent global directory
 * (and, in non-inclusive mode, the per-socket snoop filters) on
 * every private-cache miss and every flush. `std::unordered_map`
 * pays a pointer chase per node plus allocator traffic on churn;
 * this map keeps all slots in one flat array with fibonacci-hashed
 * linear probing and backward-shift deletion, so the common
 * lookup-miss and lookup-hit both touch one or two adjacent cache
 * lines and erase leaves no tombstones behind.
 *
 * Keys must be line-aligned (bit 0..5 clear); the all-ones sentinel
 * marks empty slots and can therefore never collide with a real key.
 * Iteration order is unspecified — callers must not depend on it
 * (the coherence invariant checks are order-insensitive).
 */

#ifndef COHERSIM_COMMON_LINE_MAP_HH
#define COHERSIM_COMMON_LINE_MAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace csim
{

/** Flat hash map PAddr -> uint32_t specialised for directory state. */
class LineMap
{
  public:
    explicit LineMap(std::size_t initial_capacity = 64)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        rebuild(cap);
    }

    /** Value stored for @p key, or 0 when absent. */
    std::uint32_t
    lookup(PAddr key) const
    {
        const std::uint32_t *v = find(key);
        return v ? *v : 0;
    }

    /** Pointer to the value for @p key, or nullptr when absent. */
    std::uint32_t *
    find(PAddr key)
    {
        const std::size_t i = probe(key);
        return slots_[i].key == key ? &slots_[i].value : nullptr;
    }

    const std::uint32_t *
    find(PAddr key) const
    {
        const std::size_t i = probe(key);
        return slots_[i].key == key ? &slots_[i].value : nullptr;
    }

    /** Value for @p key, inserting 0 on first use. */
    std::uint32_t &
    operator[](PAddr key)
    {
        panic_if(key != lineAlign(key),
                 "LineMap key not line-aligned: ", key);
        std::size_t i = probe(key);
        if (slots_[i].key != key) {
            if ((size_ + 1) * 16 > capacity() * 11) {
                rebuild(capacity() * 2);
                i = probe(key);
            }
            slots_[i].key = key;
            slots_[i].value = 0;
            ++size_;
        }
        return slots_[i].value;
    }

    /** Remove @p key. @return true if it was present. */
    bool
    erase(PAddr key)
    {
        std::size_t i = probe(key);
        if (slots_[i].key != key)
            return false;
        // Backward-shift deletion: pull every displaced follower of
        // the probe chain one slot back so no tombstone is needed.
        std::size_t hole = i;
        for (std::size_t k = (i + 1) & mask_;
             slots_[k].key != emptyKey; k = (k + 1) & mask_) {
            const std::size_t ideal = indexFor(slots_[k].key);
            if (((k - ideal) & mask_) >= ((k - hole) & mask_)) {
                slots_[hole] = slots_[k];
                hole = k;
            }
        }
        slots_[hole].key = emptyKey;
        --size_;
        return true;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    void
    clear()
    {
        for (Slot &s : slots_)
            s.key = emptyKey;
        size_ = 0;
    }

    /** Apply @p fn(key, value) to every entry (unspecified order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots_) {
            if (s.key != emptyKey)
                fn(s.key, s.value);
        }
    }

  private:
    struct Slot
    {
        PAddr key;
        std::uint32_t value;
    };

    /** All-ones is never line-aligned, so never a valid key. */
    static constexpr PAddr emptyKey = ~PAddr(0);

    /** Fibonacci hash: spread line addresses over the top bits. */
    std::size_t
    indexFor(PAddr key) const
    {
        return static_cast<std::size_t>(
                   (key * 0x9e3779b97f4a7c15ULL) >> shift_) & mask_;
    }

    /** First slot holding @p key or the empty slot ending its chain. */
    std::size_t
    probe(PAddr key) const
    {
        std::size_t i = indexFor(key);
        while (slots_[i].key != key && slots_[i].key != emptyKey)
            i = (i + 1) & mask_;
        return i;
    }

    void
    rebuild(std::size_t new_capacity)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_capacity, Slot{emptyKey, 0});
        mask_ = new_capacity - 1;
        shift_ = 64;
        for (std::size_t c = new_capacity; c > 1; c >>= 1)
            --shift_;
        size_ = 0;
        for (const Slot &s : old) {
            if (s.key != emptyKey) {
                const std::size_t i = probe(s.key);
                slots_[i] = s;
                ++size_;
            }
        }
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    unsigned shift_ = 64;
    std::size_t size_ = 0;
};

} // namespace csim

#endif // COHERSIM_COMMON_LINE_MAP_HH
