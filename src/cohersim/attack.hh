/**
 * @file
 * Attack layer facade: the covert-channel stack and its defences.
 *
 * The trojan/spy pair, channel protocol and calibration, symbol and
 * ECC codings, noise workloads, sharing establishment, metrics — plus
 * the detector family on the defence side. Includes the core layer
 * (`cohersim/core.hh`): an attack always runs on a simulated machine.
 */

#ifndef COHERSIM_COHERSIM_ATTACK_HH
#define COHERSIM_COHERSIM_ATTACK_HH

#include "cohersim/core.hh"

// The covert-channel stack.
#include "channel/calibration.hh"
#include "channel/channel.hh"
#include "channel/combo.hh"
#include "channel/conflict.hh"
#include "channel/ecc.hh"
#include "channel/experiment.hh"
#include "channel/fleet.hh"
#include "channel/metrics.hh"
#include "channel/noise.hh"
#include "channel/placer.hh"
#include "channel/protocol.hh"
#include "channel/sharing.hh"
#include "channel/spy.hh"
#include "channel/symbols.hh"
#include "channel/trojan.hh"
#include "channel/vector.hh"

// Defences.
#include "detect/cchunter.hh"

#endif // COHERSIM_COHERSIM_ATTACK_HH
