/**
 * @file
 * Harness layer facade: running experiments at scale.
 *
 * The host-parallel sweep runner, the JSON result sink and the
 * declarative experiment-config subsystem (specs, field registry,
 * presets, resolver). Depends only on the utility layer — the harness
 * drives whatever the job closures capture, it does not itself depend
 * on the machine or the channel. Benches that both build channels and
 * sweep them include `cohersim/attack.hh` alongside this facade.
 */

#ifndef COHERSIM_COHERSIM_HARNESS_HH
#define COHERSIM_COHERSIM_HARNESS_HH

// Utilities (the only layer the harness builds on).
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table_printer.hh"
#include "common/types.hh"

// Host-parallel experiment runner.
#include "runner/json_sink.hh"
#include "runner/runner.hh"
#include "runner/thread_pool.hh"

// Declarative experiment configuration.
#include "config/experiment_spec.hh"
#include "config/field_registry.hh"
#include "config/presets.hh"
#include "config/resolver.hh"

#endif // COHERSIM_COHERSIM_HARNESS_HH
