/**
 * @file
 * Observability layer facade: run-health telemetry over the trace
 * bus.
 *
 * The log-bucketed latency histograms, the windowed event
 * timeseries, the error-attribution engine and the health-report
 * renderers, plus the trace-side pieces they build on (the BusTap
 * seam and the Perfetto reader for offline analysis). Sits above the
 * attack layer — the monitor consumes calibration bands and channel
 * events — and below the harness, which merges per-point RunHealth
 * records across a sweep.
 */

#ifndef COHERSIM_COHERSIM_OBSERVE_HH
#define COHERSIM_COHERSIM_OBSERVE_HH

// Trace-side plumbing the observability layer rides on.
#include "trace/perfetto.hh"
#include "trace/tap.hh"

// Run-health telemetry.
#include "obs/attribution.hh"
#include "obs/health.hh"
#include "obs/histogram.hh"
#include "obs/obs_config.hh"
#include "obs/report.hh"
#include "obs/timeseries.hh"
#include "obs/vector_bands.hh"

// Self-profiling: scoped spans and the snapshot exporters.
#include "prof/export.hh"
#include "prof/profiler.hh"

#endif // COHERSIM_COHERSIM_OBSERVE_HH
