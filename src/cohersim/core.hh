/**
 * @file
 * Core layer facade: the simulated machine itself.
 *
 * Everything needed to build and drive a coherent machine — the
 * utility layer, the coroutine execution engine, the coherent memory
 * hierarchy with its inspection API, the OS substrate and the
 * virtual-time tracing/counter subsystem. Downstream users that only
 * simulate (no covert channel, no host-parallel sweeps) include this
 * and nothing else.
 *
 * Layering (strict): common <- sim <- mem <- os, with trace
 * observing every layer. The attack layer (`cohersim/attack.hh`) and
 * the harness layer (`cohersim/harness.hh`) build on top; the
 * `cohersim.hh` umbrella includes all three.
 */

#ifndef COHERSIM_COHERSIM_CORE_HH
#define COHERSIM_COHERSIM_CORE_HH

// Utilities.
#include "common/bit_string.hh"
#include "common/edit_distance.hh"
#include "common/line_map.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table_printer.hh"
#include "common/types.hh"

// Execution engine.
#include "sim/memory_backend.hh"
#include "sim/scheduler.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "sim/thread.hh"
#include "sim/thread_api.hh"

// Coherent memory hierarchy.
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/params.hh"

// Operating system substrate.
#include "os/kernel.hh"
#include "os/ksm.hh"
#include "os/ksm_guard.hh"
#include "os/phys_mem.hh"
#include "os/process.hh"

// Tracing & counters.
#include "trace/bus.hh"
#include "trace/counters.hh"
#include "trace/event.hh"
#include "trace/perfetto.hh"
#include "trace/query.hh"
#include "trace/recorder.hh"
#include "trace/ring.hh"

#endif // COHERSIM_COHERSIM_CORE_HH
