/**
 * @file
 * Frame synchronization: a correlation preamble replacing the
 * legacy "two consecutive boundary samples" start gate.
 *
 * The trojan prefixes every frame with a cyclic extension of the
 * Barker-13 sequence (the classic low-autocorrelation sync word);
 * the spy slides a window over its decoded bit stream and declares a
 * lock when the window correlates with the pattern up to a small
 * mismatch budget. Tolerating flipped bits means a noise eviction
 * inside the preamble delays the lock by at most a bit instead of
 * losing the whole frame, and each frame re-locking on its own
 * preamble bounds clock drift to a single frame (the drift-tracking
 * role of the legacy sync handshake's missing half).
 */

#ifndef COHERSIM_PHY_PREAMBLE_HH
#define COHERSIM_PHY_PREAMBLE_HH

#include <cstddef>

#include "common/bit_string.hh"

namespace csim
{

/**
 * The sync pattern: Barker-13 (1111100110101) extended cyclically to
 * @p len bits. Lengths of 8..32 keep the sidelobe behaviour; the
 * registry range enforces that.
 */
BitString preamblePattern(int len);

/** Mismatch budget a detector of @p len bits should tolerate. */
int preambleMismatchBudget(int len);

/**
 * Streaming correlator: push decoded bits one at a time; returns
 * true on the bit completing a window within the mismatch budget.
 */
class PreambleDetector
{
  public:
    PreambleDetector(BitString pattern, int max_mismatches);

    /** Feed one decoded bit; true when the preamble just matched. */
    bool push(std::uint8_t bit);

    /** Mismatch count of the window that produced the last lock. */
    int lastMismatches() const { return lastMismatches_; }

    /** Forget the window (e.g. after consuming a frame). */
    void reset();

  private:
    BitString pattern_;
    BitString window_;      //!< ring buffer of the last N bits
    std::size_t head_ = 0;  //!< next write position in window_
    std::size_t seen_ = 0;  //!< bits pushed since reset
    int maxMismatches_;
    int lastMismatches_ = 0;
};

} // namespace csim

#endif // COHERSIM_PHY_PREAMBLE_HH
