/**
 * @file
 * Block interleaving: write the frame body row-major into a
 * depth-row matrix and read it out column-major, so a burst of up to
 * `depth` consecutive wire-bit errors (one noise eviction shearing a
 * few samples) lands in `depth` different FEC codewords instead of
 * overwhelming one.
 *
 * The permutation is defined positionally for any length (no
 * padding): position i maps by its (row = i % depth, column =
 * i / depth) coordinates, ordered row-major on read-out. Both
 * directions are exact inverses for every (length, depth) pair.
 */

#ifndef COHERSIM_PHY_INTERLEAVE_HH
#define COHERSIM_PHY_INTERLEAVE_HH

#include <cstddef>
#include <vector>

#include "common/bit_string.hh"

namespace csim
{

/**
 * The interleaver permutation: out[k] = in[perm[k]] produces the
 * wire order from the codeword order.
 */
std::vector<std::size_t> interleavePermutation(std::size_t n,
                                               int depth);

/** Codeword order -> wire order. */
BitString interleaveBits(const BitString &in, int depth);

/** Wire order -> codeword order (exact inverse of interleaveBits). */
BitString deinterleaveBits(const BitString &in, int depth);

/**
 * Deinterleave any element type (the spy deinterleaves soft bits,
 * not hard ones).
 */
template <typename T>
std::vector<T>
deinterleave(const std::vector<T> &in, int depth)
{
    const std::vector<std::size_t> perm =
        interleavePermutation(in.size(), depth);
    std::vector<T> out(in.size());
    for (std::size_t k = 0; k < in.size(); ++k)
        out[perm[k]] = in[k];
    return out;
}

} // namespace csim

#endif // COHERSIM_PHY_INTERLEAVE_HH
