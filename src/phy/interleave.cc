#include "phy/interleave.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace csim
{

std::vector<std::size_t>
interleavePermutation(std::size_t n, int depth)
{
    panic_if(depth < 1, "interleaver depth must be >= 1");
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    const auto d = static_cast<std::size_t>(depth);
    // Column-major read-out of a row-major write-in: order positions
    // by (row, column). stable_sort keeps equal keys (same row) in
    // column order, which is their original order within the row.
    std::stable_sort(perm.begin(), perm.end(),
                     [d](std::size_t a, std::size_t b) {
        return a % d < b % d;
    });
    return perm;
}

BitString
interleaveBits(const BitString &in, int depth)
{
    const std::vector<std::size_t> perm =
        interleavePermutation(in.size(), depth);
    BitString out(in.size());
    for (std::size_t k = 0; k < in.size(); ++k)
        out[k] = in[perm[k]];
    return out;
}

BitString
deinterleaveBits(const BitString &in, int depth)
{
    const std::vector<std::size_t> perm =
        interleavePermutation(in.size(), depth);
    BitString out(in.size());
    for (std::size_t k = 0; k < in.size(); ++k)
        out[perm[k]] = in[k];
    return out;
}

} // namespace csim
