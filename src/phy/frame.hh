/**
 * @file
 * Frame codec of the PHY stack. One frame on the wire is
 *
 *   [preamble | header | body]
 *
 * where the header is three (8,4)-protected nibbles — the frame
 * sequence number and the body's nibble count — and the body is the
 * payload chunk whitened, Hamming(8,4)-encoded nibble by nibble and
 * block-interleaved. Frames are short on purpose: a lost bit
 * boundary (a deletion in the wire stream) shears the positional
 * alignment only to the end of the current frame, because the next
 * frame re-locks on its own preamble.
 */

#ifndef COHERSIM_PHY_FRAME_HH
#define COHERSIM_PHY_FRAME_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bit_string.hh"
#include "phy/hamming.hh"
#include "phy/phy_config.hh"

namespace csim
{

/** Header nibbles: seq, count-high, count-low. */
inline constexpr std::size_t phyHeaderNibbles = 3;
/** Header size on the wire ((8,4) per nibble). */
inline constexpr std::size_t phyHeaderWireBits =
    phyHeaderNibbles * hammingCodeBits;

/** Decoded frame header. */
struct PhyFrameHeader
{
    std::uint8_t seq = 0;  //!< 4-bit frame sequence number
    int nibbles = 0;       //!< payload nibbles in the body
};

/** What one frame body decoded to, with per-stage counts. */
struct PhyBodyResult
{
    BitString bits;          //!< dewhitened payload chunk bits
    int blocks = 0;          //!< FEC codewords in the body
    int corrected = 0;       //!< codewords with a corrected error
    int uncorrectable = 0;   //!< detected-uncorrectable codewords
};

/** Wire bits of the body for @p nibbles payload nibbles. */
inline std::size_t
phyBodyWireBits(int nibbles)
{
    return static_cast<std::size_t>(nibbles) * hammingCodeBits;
}

/**
 * Build one complete frame: preamble + header + encoded body.
 * @p chunk is padded with zero bits to a whole number of nibbles.
 */
BitString phyEncodeFrame(std::uint8_t seq, const BitString &chunk,
                         const PhyConfig &cfg);

/**
 * Decode a received header (phyHeaderWireBits hard bits). nullopt
 * when a header codeword is uncorrectable or the count is out of
 * range — the frame is unrecoverable and the spy goes back to
 * hunting for a preamble.
 */
std::optional<PhyFrameHeader>
phyDecodeHeader(const BitString &bits, const PhyConfig &cfg);

/**
 * Decode a received body (phyBodyWireBits(hdr.nibbles) soft bits):
 * deinterleave, FEC-decode each codeword (hard decisions under
 * hammingHard, maximum-likelihood under hammingSoft), dewhiten.
 * Uncorrectable codewords under the hard profile fall back to their
 * systematic data bits and are counted.
 */
PhyBodyResult phyDecodeBody(const std::vector<SoftBit> &body,
                            const PhyFrameHeader &hdr,
                            const PhyConfig &cfg);

} // namespace csim

#endif // COHERSIM_PHY_FRAME_HH
