#include "phy/whiten.hh"

namespace csim
{

void
whitenBits(BitString &bits, std::uint16_t seed)
{
    Pn9 pn(seed);
    for (std::uint8_t &b : bits)
        b = static_cast<std::uint8_t>((b ^ pn.next()) & 1);
}

} // namespace csim
