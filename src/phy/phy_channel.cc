#include "phy/phy_channel.hh"

#include <algorithm>

#include "channel/trace_hooks.hh"
#include "common/logging.hh"
#include "phy/adaptive.hh"
#include "phy/preamble.hh"
#include "phy/soft.hh"
#include "prof/profiler.hh"

namespace csim
{

void
phyPrepareSession(PhySession &s, const ChannelConfig &cfg,
                  const BitString &payload,
                  const CalibrationResult &cal)
{
    panic_if(cfg.phy.profile == PhyProfile::legacyParity &&
                 !cfg.phy.adaptive,
             "the PHY session needs a hamming profile (or adaptive "
             "mode); legacy-parity runs the classic drivers");
    s.scenario = &scenarioInfo(cfg.scenario);
    s.cal = &cal;
    s.params = cfg.params;
    s.phy = cfg.phy;

    if (cfg.phy.adaptive) {
        const AdaptiveDecision d = phyChooseOperatingPoint(
            cal, *s.scenario, cfg.noiseThreads);
        s.phy.profile = d.profile;
        s.params = ChannelParams::forTargetKbps(d.rateKbps,
                                                cfg.system.timing);
        s.rateKbps = d.rateKbps;
        s.bandSeparation = d.separation;
    }
    s.period = s.params.nominalSamplePeriod(cfg.system.timing);

    // Pre-encode the payload: fixed-size chunks, 4-bit sequence
    // numbers. FEC mode never retransmits, so consecutive frames
    // always carry distinct sequence numbers and the spy's duplicate
    // guard only ever drops false decodes.
    ScopedSpan span("phy.encode");
    const std::size_t chunk_bits =
        static_cast<std::size_t>(s.phy.frameNibbles) * hammingDataBits;
    for (std::size_t off = 0; off < payload.size();
         off += chunk_bits) {
        const BitString chunk(
            payload.begin() + static_cast<std::ptrdiff_t>(off),
            payload.begin() +
                static_cast<std::ptrdiff_t>(
                    std::min(off + chunk_bits, payload.size())));
        s.frames.push_back(phyEncodeFrame(
            static_cast<std::uint8_t>(s.frames.size() & 0xf), chunk,
            s.phy));
    }
}

Task
phyTrojanBody(ThreadApi api, PlacerCrew &crew, VAddr block,
              PhySession &s)
{
    co_await trojanSyncPhase(api, block, *s.cal, s.params, s.trojan);
    s.sessionStart = api.now();
    if (s.rateKbps > 0.0) {
        chEvent(api, TraceEventType::chPhyAdapt,
                static_cast<std::uint64_t>(s.phy.profile),
                static_cast<std::uint64_t>(s.rateKbps));
    }

    bool first = true;
    for (const BitString &frame : s.frames) {
        TrojanResult tr;
        co_await trojanTransmit(api, crew, block, *s.scenario,
                                s.params, s.period, frame, tr);
        if (first) {
            s.trojan.txStart = tr.txStart;
            first = false;
        }
        s.trojan.txEnd = tr.txEnd;
        s.rawBitsSent += frame.size();
        ++s.stages.framesSent;
        // Brief inter-frame silence: the spy's translator parks in
        // its boundary state and the next preamble re-locks it.
        co_await api.spin(2 * s.period);
    }
    crew.idle();
    s.trojanEnd = api.now();
    s.trojanDone = true;
}

Task
phySpyBody(ThreadApi api, VAddr block, PhySession &s)
{
    LatencyBand tc = s.cal->band(s.scenario->csc);
    LatencyBand tb = s.cal->band(s.scenario->csb);
    LatencyBand dram = s.cal->dramBand;
    {
        std::vector<LatencyBand *> used = {&tc, &tb, &dram};
        claimGaps(used, s.params.gapClaim);
    }

    SoftTranslator translator(s.params);
    PreambleDetector detector(preamblePattern(s.phy.preambleLen),
                              preambleMismatchBudget(s.phy.preambleLen));
    enum class Rx : std::uint8_t { hunt, header, body };
    Rx rx = Rx::hunt;
    BitString header_bits;
    std::vector<SoftBit> body_bits;
    PhyFrameHeader hdr;
    // Absolute frame index recovered from the 4-bit wire sequence:
    // the delta to the previously accepted frame's sequence number
    // unwraps it (frames arrive in transmit order; up to 15
    // consecutive losses stay unambiguous).
    int last_seq = -1;
    std::size_t frame_index = 0;
    int out_of_band = 0;
    std::uint64_t wire_index = 0;

    // The FEC stack has no reverse channel, so the spy simply
    // listens until the trojan has fallen silent for good.
    const auto session_over = [&] {
        return s.trojanDone && api.now() > s.trojanEnd + 4 * s.period;
    };

    while (!session_over()) {
        co_await api.flush(block);
        co_await api.spin(s.params.ts);
        const Tick lat = co_await api.load(block);
        const double latency = static_cast<double>(lat);
        const auto cls = classifySample(latency, tc, tb);
        if (cls == SampleClass::outOfBand) {
            ++out_of_band;
        } else {
            // Slips reported at recovery, as in spyBody, so the
            // inter-frame quiet gaps never count as one each sample.
            if (out_of_band > 0) {
                chEvent(api, TraceEventType::chSyncSlip,
                        static_cast<std::uint64_t>(out_of_band));
            }
            out_of_band = 0;
        }

        const auto soft = translator.feed(
            cls, classifyConfidence(latency, tc, tb, cls));
        if (!soft)
            continue;
        ++s.stages.wireBitsReceived;
        s.spy.bits.push_back(soft->bit);
        chEvent(api, TraceEventType::chRxBit, soft->bit,
                wire_index++);

        switch (rx) {
          case Rx::hunt:
            if (detector.push(soft->bit)) {
                ++s.stages.preambleLocks;
                chEvent(api, TraceEventType::chPhyPreambleLock,
                        static_cast<std::uint64_t>(
                            detector.lastMismatches()));
                if (!s.spy.sawTransmission) {
                    s.spy.sawTransmission = true;
                    s.spy.rxStart = api.now();
                    chEvent(api, TraceEventType::chRxStart);
                }
                header_bits.clear();
                rx = Rx::header;
            }
            break;
          case Rx::header:
            header_bits.push_back(soft->bit);
            if (header_bits.size() == phyHeaderWireBits) {
                // Synchronous between two co_awaits: safe to
                // wall-scope (never held across a suspension).
                ScopedSpan hdr_span("phy.decode.header");
                if (const auto h =
                        phyDecodeHeader(header_bits, s.phy)) {
                    hdr = *h;
                    body_bits.clear();
                    rx = Rx::body;
                } else {
                    ++s.stages.headerBad;
                    chEvent(api, TraceEventType::chPhyHeaderBad,
                            s.stages.headerBad);
                    rx = Rx::hunt;
                }
            }
            break;
          case Rx::body:
            body_bits.push_back(*soft);
            if (body_bits.size() == phyBodyWireBits(hdr.nibbles)) {
                ScopedSpan body_span("phy.decode.body");
                const PhyBodyResult res =
                    phyDecodeBody(body_bits, hdr, s.phy);
                s.stages.fecBlocks +=
                    static_cast<std::uint64_t>(res.blocks);
                s.stages.fecCorrected +=
                    static_cast<std::uint64_t>(res.corrected);
                s.stages.fecUncorrectable +=
                    static_cast<std::uint64_t>(res.uncorrectable);
                if (res.corrected > 0) {
                    chEvent(api, TraceEventType::chPhyFecCorrected,
                            static_cast<std::uint64_t>(res.corrected),
                            hdr.seq);
                }
                if (res.uncorrectable > 0) {
                    chEvent(api, TraceEventType::chPhyFecBad,
                            static_cast<std::uint64_t>(
                                res.uncorrectable),
                            hdr.seq);
                }
                const bool dup = static_cast<int>(hdr.seq) == last_seq;
                if (dup) {
                    ++s.stages.framesDuplicate;
                } else {
                    if (last_seq < 0) {
                        // Losses before the first lock: the raw
                        // sequence is the absolute index (mod 16).
                        frame_index = hdr.seq;
                    } else {
                        frame_index += static_cast<std::size_t>(
                            (static_cast<int>(hdr.seq) - last_seq +
                             16) %
                            16);
                    }
                    s.accepted.emplace_back(frame_index, res.bits);
                    last_seq = hdr.seq;
                    ++s.stages.framesAccepted;
                }
                chEvent(api, TraceEventType::chPhyFrame, hdr.seq,
                        dup ? 0 : 1);
                s.spy.rxEnd = api.now();
                detector.reset();
                rx = Rx::hunt;
            }
            break;
        }
    }
    chEvent(api, TraceEventType::chRxEnd, s.stages.wireBitsReceived);
}

PhyReport
phyFinalizeSession(const PhySession &s, const BitString &payload,
                   const TimingParams &timing, Tick fallback_end)
{
    ScopedSpan span("phy.finalize");
    PhyReport r;
    r.payloadBits = payload.size();
    r.frames = static_cast<int>(s.frames.size());
    r.rawBitsSent = s.rawBitsSent;
    r.profileUsed = s.phy.profile;
    r.rateKbps = s.rateKbps;
    r.bandSeparation = s.bandSeparation;
    r.stages = s.stages;

    // Place each accepted chunk at its sequence-derived offset;
    // lost frames stay zero-filled erasures instead of shifting
    // every later chunk out of position.
    const std::size_t chunk_bits =
        static_cast<std::size_t>(s.phy.frameNibbles) *
        hammingDataBits;
    r.delivered.assign(payload.size(), 0);
    for (const auto &[index, chunk] : s.accepted) {
        const std::size_t off = index * chunk_bits;
        for (std::size_t i = 0;
             i < chunk.size() && off + i < r.delivered.size(); ++i) {
            r.delivered[off + i] = chunk[i];
        }
    }
    if (s.accepted.empty())
        r.delivered.clear();
    for (std::size_t i = 0; i < payload.size(); ++i) {
        if (i >= r.delivered.size() || r.delivered[i] != payload[i])
            ++r.residualErrors;
    }

    const Tick end = s.trojanDone ? s.trojanEnd : fallback_end;
    r.durationCycles =
        end > s.sessionStart ? end - s.sessionStart : 0;
    r.effectiveKbps = timing.kbps(r.payloadBits, r.durationCycles);
    const std::uint64_t good =
        r.payloadBits - std::min(r.residualErrors, r.payloadBits);
    r.payloadKbps = timing.kbps(good, r.durationCycles);
    return r;
}

ChannelMetrics
phyChannelMetrics(const PhyReport &report, const PhySession &s,
                  const BitString &payload,
                  const TimingParams &timing)
{
    ChannelMetrics m = computeMetrics(
        payload, report.delivered, s.trojan.txStart,
        s.trojanDone ? s.trojanEnd : s.trojan.txEnd, timing);
    // Payload-level accuracy and goodput; the wire rate keeps the
    // FEC expansion factor visible next to them.
    m.payloadKbps = m.effectiveKbps;
    m.rawKbps = timing.kbps(report.rawBitsSent, m.durationCycles);
    return m;
}

void
addPhyCounters(CounterRegistry &reg, const std::string &prefix,
               const PhyReport &report)
{
    const std::string base = prefix + "ch.phy.";
    reg.counter(base + "frames_sent") = report.stages.framesSent;
    reg.counter(base + "frames_accepted") =
        report.stages.framesAccepted;
    reg.counter(base + "preamble_locks") =
        report.stages.preambleLocks;
    reg.counter(base + "header_bad") = report.stages.headerBad;
    reg.counter(base + "fec_corrected") = report.stages.fecCorrected;
    reg.counter(base + "fec_uncorrectable") =
        report.stages.fecUncorrectable;
    reg.counter(base + "wire_bits") = report.rawBitsSent;
    // The profile the session actually ran (the adaptive controller
    // may override the configured one) and, when adaptive, the raw
    // rate it picked — so report consumers need no side channel.
    reg.counter(base + "profile") =
        static_cast<std::uint64_t>(report.profileUsed);
    if (report.rateKbps > 0.0)
        reg.counter(base + "adapt_rate_kbps") =
            static_cast<std::uint64_t>(report.rateKbps);
}

PhyReport
runPhyTransmission(const ChannelConfig &cfg_in,
                   const BitString &payload,
                   const CalibrationResult *cal,
                   ChannelReport *channel_report)
{
    // Mirror runCovertTransmission: the llc-notify defence changes
    // the timing model before calibration samples it.
    ChannelConfig cfg = cfg_in;
    if (cfg.defense == Defense::llcNotify)
        cfg.system.timing.llcNotifiedOfUpgrade = true;

    CalibrationResult local_cal;
    if (!cal) {
        ScopedSpan span("rig.calibrate");
        local_cal = calibrate(cfg.system, 400, cfg.params);
        cal = &local_cal;
    }

    PhySession session;
    phyPrepareSession(session, cfg, payload, *cal);

    ExperimentRig rig(cfg, session.scenario->localLoaders,
                      session.scenario->remoteLoaders,
                      session.scenario->csc);

    rig.machine.kernel.spawnThread(
        rig.machine.sched, "trojan.ctl", rig.plan.controller,
        *rig.trojanProc, [&](ThreadApi api) {
            return phyTrojanBody(api, *rig.crew, rig.shared.trojanVa,
                                 session);
        });
    SimThread *spy_thread = rig.machine.kernel.spawnThread(
        rig.machine.sched, "spy", rig.plan.spy, *rig.spyProc,
        [&](ThreadApi api) {
            return phySpyBody(api, rig.shared.spyVa, session);
        });

    {
        ScopedSpan span("rig.run");
        const Tick run_start = rig.machine.sched.now();
        rig.machine.sched.runUntilFinished(spy_thread, cfg.timeout);
        span.addVirtual(rig.machine.sched.now() - run_start);
    }
    rig.crew->stopAll();

    if (Profiler::enabled()) {
        const TrojanResult &tr = session.trojan;
        if (tr.syncEnd >= tr.syncStart)
            profRecord("rig.sync", 0, tr.syncEnd - tr.syncStart);
        if (tr.txEnd >= tr.txStart)
            profRecord("rig.transmit", 0, tr.txEnd - tr.txStart);
    }

    PhyReport report = phyFinalizeSession(session, payload,
                                          cfg.system.timing,
                                          rig.machine.sched.now());
    report.completed = spy_thread->finished;

    if (channel_report) {
        channel_report->sent = payload;
        channel_report->received = report.delivered;
        channel_report->trojan = session.trojan;
        channel_report->spy = session.spy;
        channel_report->shared = rig.shared;
        channel_report->completed = report.completed;
        channel_report->metrics = phyChannelMetrics(
            report, session, payload, cfg.system.timing);
        channel_report->counters =
            collectCounters(rig.machine, cfg.recorder);
        addChannelCounters(channel_report->counters,
                           rig.counterPrefix(),
                           channel_report->metrics);
        addPhyCounters(channel_report->counters, rig.counterPrefix(),
                       report);
    }
    return report;
}

} // namespace csim
