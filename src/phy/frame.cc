#include "phy/frame.hh"

#include "common/logging.hh"
#include "phy/interleave.hh"
#include "phy/preamble.hh"
#include "phy/whiten.hh"

namespace csim
{

namespace
{

/**
 * Per-frame whitening seed: any nonzero 9-bit state works; mixing
 * the sequence number in keeps consecutive frames' wire bodies
 * decorrelated even for identical payload chunks.
 */
std::uint16_t
whitenSeed(std::uint8_t seq)
{
    return static_cast<std::uint16_t>(0x100 |
                                      ((seq * 0x1d + 0x53) & 0xff));
}

BitString
encodeNibbles(const BitString &bits)
{
    BitString out;
    out.reserve(bits.size() * 2);
    for (std::size_t off = 0; off < bits.size();
         off += hammingDataBits) {
        std::uint8_t nibble = 0;
        for (std::size_t i = 0; i < hammingDataBits; ++i) {
            nibble = static_cast<std::uint8_t>(
                (nibble << 1) | (bits[off + i] & 1));
        }
        const BitString code = hammingEncode84(nibble);
        out.insert(out.end(), code.begin(), code.end());
    }
    return out;
}

} // namespace

BitString
phyEncodeFrame(std::uint8_t seq, const BitString &chunk,
               const PhyConfig &cfg)
{
    BitString body = chunk;
    while (body.size() % hammingDataBits != 0)
        body.push_back(0);
    const std::size_t nibbles = body.size() / hammingDataBits;
    panic_if(nibbles == 0 || nibbles > 255,
             "phy frame body must hold 1..255 nibbles, got ",
             nibbles);

    if (cfg.whiten)
        whitenBits(body, whitenSeed(seq));

    BitString wire = preamblePattern(cfg.preambleLen);
    const std::uint8_t count = static_cast<std::uint8_t>(nibbles);
    const std::uint8_t header_nibbles[phyHeaderNibbles] = {
        static_cast<std::uint8_t>(seq & 0xf),
        static_cast<std::uint8_t>(count >> 4),
        static_cast<std::uint8_t>(count & 0xf),
    };
    for (const std::uint8_t n : header_nibbles) {
        const BitString code = hammingEncode84(n);
        wire.insert(wire.end(), code.begin(), code.end());
    }

    const BitString coded =
        interleaveBits(encodeNibbles(body), cfg.interleaverDepth);
    wire.insert(wire.end(), coded.begin(), coded.end());
    return wire;
}

std::optional<PhyFrameHeader>
phyDecodeHeader(const BitString &bits, const PhyConfig &cfg)
{
    (void)cfg;
    if (bits.size() != phyHeaderWireBits)
        return std::nullopt;
    std::uint8_t nibbles[phyHeaderNibbles] = {};
    for (std::size_t k = 0; k < phyHeaderNibbles; ++k) {
        const BitString code(
            bits.begin() +
                static_cast<std::ptrdiff_t>(k * hammingCodeBits),
            bits.begin() +
                static_cast<std::ptrdiff_t>((k + 1) *
                                            hammingCodeBits));
        // The header always hard-decodes: SECDED's detect-only
        // region is exactly the garbled-header signal the hunt loop
        // needs to fall back on.
        const auto nibble = hammingDecode84(code);
        if (!nibble)
            return std::nullopt;
        nibbles[k] = *nibble;
    }
    PhyFrameHeader hdr;
    hdr.seq = nibbles[0];
    hdr.nibbles = (nibbles[1] << 4) | nibbles[2];
    if (hdr.nibbles < 1 || hdr.nibbles > 255)
        return std::nullopt;
    return hdr;
}

PhyBodyResult
phyDecodeBody(const std::vector<SoftBit> &body,
              const PhyFrameHeader &hdr, const PhyConfig &cfg)
{
    PhyBodyResult out;
    panic_if(body.size() != phyBodyWireBits(hdr.nibbles),
             "phy body size mismatch: ", body.size(), " vs ",
             phyBodyWireBits(hdr.nibbles));
    const std::vector<SoftBit> codewords =
        deinterleave(body, cfg.interleaverDepth);

    BitString bits;
    bits.reserve(static_cast<std::size_t>(hdr.nibbles) *
                 hammingDataBits);
    for (int k = 0; k < hdr.nibbles; ++k) {
        const SoftBit *code =
            codewords.data() +
            static_cast<std::size_t>(k) * hammingCodeBits;
        ++out.blocks;
        std::uint8_t nibble = 0;
        FecOutcome outcome = FecOutcome::clean;
        if (cfg.profile == PhyProfile::hammingSoft) {
            nibble = hammingDecodeSoft(code, &outcome);
        } else {
            BitString hard(hammingCodeBits);
            for (std::size_t i = 0; i < hammingCodeBits; ++i)
                hard[i] = code[i].bit;
            const auto decoded = hammingDecode84(hard, &outcome);
            if (decoded) {
                nibble = *decoded;
            } else {
                // Best effort: the systematic data bits as received.
                for (std::size_t i = 0; i < hammingDataBits; ++i) {
                    nibble = static_cast<std::uint8_t>(
                        (nibble << 1) | hard[i]);
                }
            }
        }
        out.corrected += outcome == FecOutcome::corrected;
        out.uncorrectable += outcome == FecOutcome::uncorrectable;
        for (std::size_t i = 0; i < hammingDataBits; ++i)
            bits.push_back((nibble >> (hammingDataBits - 1 - i)) & 1);
    }

    if (cfg.whiten)
        whitenBits(bits, whitenSeed(hdr.seq));
    out.bits = std::move(bits);
    return out;
}

} // namespace csim
