#include "phy/preamble.hh"

#include "common/logging.hh"

namespace csim
{

BitString
preamblePattern(int len)
{
    panic_if(len < 4, "preamble length must be >= 4 bits");
    static constexpr std::uint8_t barker13[13] = {1, 1, 1, 1, 1, 0, 0,
                                                  1, 1, 0, 1, 0, 1};
    BitString out(static_cast<std::size_t>(len));
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = barker13[i % 13];
    return out;
}

int
preambleMismatchBudget(int len)
{
    // One tolerated flip per octet of preamble: a 16-bit preamble
    // survives two hits, while random data (expected len/2
    // mismatches) stays far outside the budget.
    return len / 8;
}

PreambleDetector::PreambleDetector(BitString pattern,
                                   int max_mismatches)
    : pattern_(std::move(pattern)),
      window_(pattern_.size(), 0),
      maxMismatches_(max_mismatches)
{
    panic_if(pattern_.empty(), "preamble pattern is empty");
}

bool
PreambleDetector::push(std::uint8_t bit)
{
    window_[head_] = bit & 1;
    head_ = (head_ + 1) % window_.size();
    if (++seen_ < window_.size())
        return false;
    // Compare the ring against the pattern; head_ now points at the
    // oldest bit. O(len) per push is fine for len <= 32.
    int mismatches = 0;
    for (std::size_t i = 0; i < pattern_.size(); ++i) {
        const std::uint8_t got =
            window_[(head_ + i) % window_.size()];
        mismatches += got != pattern_[i];
        if (mismatches > maxMismatches_)
            return false;
    }
    lastMismatches_ = mismatches;
    // A lock consumes the window: the next lock needs a full fresh
    // preamble, so frame-body bits cannot re-trigger on the tail.
    seen_ = 0;
    head_ = 0;
    return true;
}

void
PreambleDetector::reset()
{
    seen_ = 0;
    head_ = 0;
    lastMismatches_ = 0;
}

} // namespace csim
