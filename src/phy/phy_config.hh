/**
 * @file
 * Configuration of the PHY-style channel stack (`phy.*` fields).
 *
 * Dependency-free on purpose: `ChannelConfig` embeds a PhyConfig, so
 * this header must not pull any channel machinery in. The stack
 * itself lives in the sibling headers (whiten, interleave, hamming,
 * preamble, soft, frame, adaptive, phy_channel).
 */

#ifndef COHERSIM_PHY_PHY_CONFIG_HH
#define COHERSIM_PHY_PHY_CONFIG_HH

#include <cstdint>

namespace csim
{

/**
 * Which transmit/receive chain the channel runs.
 *
 * legacyParity is the paper's §VIII-C scheme (even-parity packets
 * with NACK-triggered retransmission) and the default: every
 * pre-existing experiment is bit-identical under it. The hamming
 * profiles replace ARQ with forward error correction over a framed,
 * whitened, interleaved wire format; `hard` decodes each codeword
 * from hard bit decisions, `soft` runs maximum-likelihood decoding
 * over the spy's per-bit confidence.
 */
enum class PhyProfile : std::uint8_t
{
    legacyParity,
    hammingHard,
    hammingSoft,
};

const char *phyProfileName(PhyProfile p);

/**
 * Parse a profile name ("legacy-parity", "hamming-hard",
 * "hamming-soft"); @return false when unknown.
 */
bool phyProfileFromName(const char *name, PhyProfile &out);

/** PHY channel-stack knobs (the `phy.*` config axis). */
struct PhyConfig
{
    PhyProfile profile = PhyProfile::legacyParity;
    /**
     * Block-interleaver rows. Burst errors of up to this many
     * consecutive wire bits land in distinct FEC codewords. 1
     * disables interleaving.
     */
    int interleaverDepth = 8;
    /**
     * Preamble length in wire bits (a cyclic extension of the
     * Barker-13 sequence). Longer preambles lower the false-lock
     * rate at the cost of per-frame overhead.
     */
    int preambleLen = 16;
    /** Whiten frame bodies with the PN9 sequence before FEC. */
    bool whiten = true;
    /**
     * Pick the FEC profile and bit period from the calibrated band
     * separation at session start instead of the configured ones.
     */
    bool adaptive = false;
    /**
     * Payload nibbles per frame. Short frames bound how far a lost
     * bit boundary can shear the positional FEC alignment; each
     * frame re-locks at its own preamble.
     */
    int frameNibbles = 32;
};

} // namespace csim

#endif // COHERSIM_PHY_PHY_CONFIG_HH
