/**
 * @file
 * Adaptive operating-point selection: pick the FEC profile and the
 * raw bit rate from the calibrated band statistics, at session
 * start.
 *
 * The spy's whole decision problem is the separation of the
 * scenario's Tc and Tb latency distributions (paper Fig. 2). The
 * run-health assessment (src/obs/report.cc, assessBands) scores
 * exactly this as the gap between per-band [p5, p95] sample
 * intervals; the controller applies the same statistic to the
 * calibration samples, which exist before any payload bit moves:
 * wide separation on a quiet machine affords a fast hard-decision
 * operating point, shrinking separation (or expected co-tenant
 * noise) buys margin back with soft decoding and a longer bit
 * period.
 */

#ifndef COHERSIM_PHY_ADAPTIVE_HH
#define COHERSIM_PHY_ADAPTIVE_HH

#include "channel/calibration.hh"
#include "channel/combo.hh"
#include "phy/phy_config.hh"

namespace csim
{

/** The controller's pick, plus the evidence it acted on. */
struct AdaptiveDecision
{
    PhyProfile profile = PhyProfile::hammingSoft;
    /** Suggested raw rate, Kbps; 0 keeps the configured params. */
    double rateKbps = 0.0;
    /**
     * Gap between the scenario's Tc and Tb [p5, p95] calibration
     * sample intervals, cycles; negative means they overlap.
     */
    double separation = 0.0;
};

/**
 * Percentile-interval separation of two calibration sample sets
 * (the assessBands statistic, applied at calibration time).
 */
double bandSampleSeparation(const SampleSet &a, const SampleSet &b);

/** Choose profile and rate for one scenario's calibrated bands. */
AdaptiveDecision phyChooseOperatingPoint(const CalibrationResult &cal,
                                         const ScenarioInfo &scenario,
                                         int noise_threads);

} // namespace csim

#endif // COHERSIM_PHY_ADAPTIVE_HH
