/**
 * @file
 * The PHY-profile covert session: the channel driver that replaces
 * the legacy parity/NACK scheme with the framed, whitened,
 * interleaved, FEC-protected wire format of src/phy.
 *
 * The transmit chain runs whiten -> Hamming(8,4) -> interleave ->
 * frame (preamble + header + body); the receive chain runs the soft
 * demapper -> preamble hunt -> deinterleave -> FEC decode ->
 * dewhiten. There is no reverse channel: residual errors are the
 * codewords FEC could not repair, and the rate is whatever the
 * operating point sustains — the trade the adaptive controller
 * navigates (src/phy/adaptive.hh).
 *
 * The coroutine bodies and the session state are public so the fleet
 * orchestrator can run one PHY session per co-resident pair on its
 * shared machine, exactly like the single-pair driver below does on
 * an owned one.
 */

#ifndef COHERSIM_PHY_PHY_CHANNEL_HH
#define COHERSIM_PHY_PHY_CHANNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "channel/channel.hh"
#include "common/bit_string.hh"
#include "phy/frame.hh"
#include "phy/phy_config.hh"

namespace csim
{

/** Per-stage receive/transmit counters of one PHY session. */
struct PhyStageStats
{
    std::uint64_t framesSent = 0;
    std::uint64_t wireBitsReceived = 0;  //!< demapped wire bits
    std::uint64_t preambleLocks = 0;
    std::uint64_t headerBad = 0;      //!< headers that failed SECDED
    std::uint64_t framesAccepted = 0;
    std::uint64_t framesDuplicate = 0;  //!< dropped by the seq guard
    std::uint64_t fecBlocks = 0;        //!< codewords decoded
    std::uint64_t fecCorrected = 0;     //!< codewords with a repair
    std::uint64_t fecUncorrectable = 0;  //!< detected-unrepairable
};

/** Outcome of one PHY-profile session. */
struct PhyReport
{
    std::uint64_t payloadBits = 0;
    int frames = 0;  //!< frames the payload was split into
    /** Wire bits transmitted (preamble + header + coded body). */
    std::uint64_t rawBitsSent = 0;
    /** What the spy reassembled (truncated to payloadBits). */
    BitString delivered;
    /** Positional bit errors remaining after FEC. */
    std::uint64_t residualErrors = 0;
    /** Session duration (sync end to trojan completion), cycles. */
    Tick durationCycles = 0;
    /** Payload bits over the session duration, Kbits/s (the
     *  EccReport::effectiveKbps convention). */
    double effectiveKbps = 0.0;
    /** Goodput: correctly delivered payload bits over the session
     *  duration, Kbits/s — net of framing/FEC overhead and of the
     *  residual errors effectiveKbps still credits. */
    double payloadKbps = 0.0;
    /** Profile the session actually ran (adaptive may override). */
    PhyProfile profileUsed = PhyProfile::hammingSoft;
    /** Raw rate the adaptive controller picked; 0 = configured. */
    double rateKbps = 0.0;
    /** Calibrated band separation the controller acted on. */
    double bandSeparation = 0.0;
    PhyStageStats stages;
    bool completed = false;
};

/**
 * State one PHY session's two coroutines share, plus everything they
 * record. Fill with phyPrepareSession(), hand to the bodies, then
 * harvest with phyFinalizeSession(). The scenario/calibration
 * pointers are non-owning and must outlive the run.
 */
struct PhySession
{
    const ScenarioInfo *scenario = nullptr;
    const CalibrationResult *cal = nullptr;
    ChannelParams params;   //!< post-adaptive operating parameters
    PhyConfig phy;          //!< post-adaptive profile and knobs
    Tick period = 0;        //!< nominal sample period under params
    std::vector<BitString> frames;  //!< wire frames to transmit

    /** @name Adaptive-controller evidence (zero when disabled) */
    /** @{ */
    double rateKbps = 0.0;
    double bandSeparation = 0.0;
    /** @} */

    /** @name Live coroutine state */
    /** @{ */
    bool trojanDone = false;
    Tick sessionStart = 0;  //!< sync end (payload clock starts)
    Tick trojanEnd = 0;
    /** @} */

    /** @name Outputs */
    /** @{ */
    TrojanResult trojan;
    SpyResult spy;  //!< bits = demapped wire bits, for diagnostics
    /**
     * Accepted frame chunks keyed by *absolute* frame index,
     * unwrapped from the 4-bit sequence numbers: a lost frame
     * leaves a gap (an erasure) instead of shifting every later
     * chunk's position.
     */
    std::vector<std::pair<std::size_t, BitString>> accepted;
    PhyStageStats stages;
    std::uint64_t rawBitsSent = 0;
    /** @} */
};

/**
 * Resolve the operating point (running the adaptive controller when
 * cfg.phy.adaptive) and pre-encode the payload into wire frames.
 */
void phyPrepareSession(PhySession &s, const ChannelConfig &cfg,
                       const BitString &payload,
                       const CalibrationResult &cal);

/** Trojan controller: sync handshake, then one burst per frame. */
Task phyTrojanBody(ThreadApi api, PlacerCrew &crew, VAddr block,
                   PhySession &s);

/**
 * Spy: sample, soft-demap, hunt for preambles, decode headers and
 * FEC-protected bodies until the trojan falls silent.
 */
Task phySpyBody(ThreadApi api, VAddr block, PhySession &s);

/**
 * Harvest the session into a report. @p fallback_end bounds the
 * duration when the trojan never finished (timeout).
 */
PhyReport phyFinalizeSession(const PhySession &s,
                             const BitString &payload,
                             const TimingParams &timing,
                             Tick fallback_end);

/**
 * Map a finished session onto the common ChannelMetrics: accuracy
 * and effective/payload rates are payload-level, rawKbps is the wire
 * rate (so the FEC expansion factor stays visible).
 */
ChannelMetrics phyChannelMetrics(const PhyReport &report,
                                 const PhySession &s,
                                 const BitString &payload,
                                 const TimingParams &timing);

/**
 * Publish the per-stage counters into @p reg under
 * `<prefix>ch.phy.*`, next to the common `<prefix>ch.*` set.
 */
void addPhyCounters(CounterRegistry &reg, const std::string &prefix,
                    const PhyReport &report);

/**
 * Run one complete PHY-profile covert transmission (the single-pair
 * path; the fleet orchestrator drives the pieces itself).
 *
 * @param cfg experiment configuration; cfg.phy selects the stack.
 * @param payload bits the trojan exfiltrates.
 * @param cal pre-computed calibration to reuse across a sweep.
 * @param channel_report when non-null, also filled with the common
 *        ChannelReport view (metrics, counters, trojan/spy results)
 *        so runCovertTransmission can dispatch here transparently.
 */
PhyReport runPhyTransmission(const ChannelConfig &cfg,
                             const BitString &payload,
                             const CalibrationResult *cal = nullptr,
                             ChannelReport *channel_report = nullptr);

} // namespace csim

#endif // COHERSIM_PHY_PHY_CHANNEL_HH
