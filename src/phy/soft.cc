#include "phy/soft.hh"

#include <algorithm>
#include <cmath>

namespace csim
{

double
classifyConfidence(double latency, const LatencyBand &tc,
                   const LatencyBand &tb, SampleClass cls)
{
    if (cls == SampleClass::outOfBand)
        return 0.0;
    const double d_own = std::abs(
        latency -
        (cls == SampleClass::communication ? tc.mid() : tb.mid()));
    const double d_other = std::abs(
        latency -
        (cls == SampleClass::communication ? tb.mid() : tc.mid()));
    if (d_own + d_other <= 0.0)
        return 0.0;
    return std::clamp((d_other - d_own) / (d_other + d_own), 0.0,
                      1.0);
}

SoftBit
SoftTranslator::emit()
{
    SoftBit out;
    out.bit = cRun_ > thold_ ? 1 : 0;
    const double run_margin = std::min(
        1.0, std::abs(static_cast<double>(cRun_ - thold_)) / spread_);
    const double mean_conf =
        cRun_ > 0 ? confSum_ / static_cast<double>(cRun_) : 0.0;
    // Equal parts run-length margin and sample quality; skipped
    // samples inside the run mean the count itself is suspect.
    double conf = 0.5 * run_margin + 0.5 * mean_conf;
    conf /= 1.0 + static_cast<double>(skips_);
    // Confidence floor: the hard decision always carries *some*
    // weight, or an all-zero codeword would decode arbitrarily.
    out.confidence = std::clamp(conf, 0.05, 1.0);
    cRun_ = 0;
    skips_ = 0;
    confSum_ = 0.0;
    return out;
}

std::optional<SoftBit>
SoftTranslator::feed(SampleClass cls, double band_conf)
{
    switch (phase_) {
      case Phase::seekBoundary:
        if (cls == SampleClass::boundary)
            phase_ = Phase::inBoundary;
        return std::nullopt;
      case Phase::inBoundary:
        if (cls == SampleClass::communication) {
            phase_ = Phase::inBit;
            cRun_ = 1;
            confSum_ = band_conf;
            skips_ = 0;
        }
        return std::nullopt;
      case Phase::inBit:
        if (cls == SampleClass::communication) {
            ++cRun_;
            confSum_ += band_conf;
            return std::nullopt;
        }
        if (cls == SampleClass::boundary) {
            phase_ = Phase::inBoundary;
            return emit();
        }
        // Out-of-band: the run continues (Algorithm 2 scans past
        // samples in neither band) but the bit loses confidence.
        ++skips_;
        return std::nullopt;
    }
    return std::nullopt;
}

std::optional<SoftBit>
SoftTranslator::finish()
{
    std::optional<SoftBit> out;
    if (phase_ == Phase::inBit && cRun_ > 0)
        out = emit();
    phase_ = Phase::seekBoundary;
    cRun_ = 0;
    skips_ = 0;
    confSum_ = 0.0;
    return out;
}

void
SoftTranslator::reset()
{
    phase_ = Phase::seekBoundary;
    cRun_ = 0;
    skips_ = 0;
    confSum_ = 0.0;
}

} // namespace csim
