/**
 * @file
 * Soft demapping: the spy observes raw load latencies, not hard
 * bits, so every decoded wire bit can carry a confidence — how far
 * its samples sat from the Tc/Tb decision boundary (paper Fig. 2)
 * and how far its run length sat from Thold. The soft-decision FEC
 * decoder weighs bits by these confidences, which is what lets the
 * hamming-soft profile survive operating points where hard decisions
 * already start flipping.
 */

#ifndef COHERSIM_PHY_SOFT_HH
#define COHERSIM_PHY_SOFT_HH

#include <optional>

#include "channel/calibration.hh"
#include "channel/protocol.hh"
#include "channel/spy.hh"
#include "phy/hamming.hh"

namespace csim
{

/**
 * Confidence of one sample's band classification, in [0, 1]: the
 * normalized distance advantage of the chosen band's centre over the
 * competing band's. 1 at the band centre, 0 at the midpoint between
 * the bands (and for out-of-band samples, which carry no evidence).
 */
double classifyConfidence(double latency, const LatencyBand &tc,
                          const LatencyBand &tb, SampleClass cls);

/**
 * Incremental run-length translation with per-bit soft output: the
 * state machine of IncrementalTranslator, additionally folding the
 * run's sample confidences, its distance from Thold and any skipped
 * out-of-band samples into a SoftBit confidence.
 */
class SoftTranslator
{
  public:
    explicit SoftTranslator(const ChannelParams &params)
        : thold_(params.thold()),
          spread_(std::max(1.0, (params.c1 - params.c0) / 2.0))
    {
    }

    /** Feed one classified sample; a SoftBit when one completes. */
    std::optional<SoftBit> feed(SampleClass cls, double band_conf);

    /** Flush a pending communication run at end of stream. */
    std::optional<SoftBit> finish();

    void reset();

  private:
    SoftBit emit();

    enum class Phase : std::uint8_t
    {
        seekBoundary,
        inBoundary,
        inBit,
    };

    int thold_;
    double spread_;
    Phase phase_ = Phase::seekBoundary;
    int cRun_ = 0;
    int skips_ = 0;        //!< out-of-band samples inside the run
    double confSum_ = 0.0; //!< band confidences of the run's samples
};

} // namespace csim

#endif // COHERSIM_PHY_SOFT_HH
