/**
 * @file
 * Hamming codecs for the FEC stage: the classic (7,4) code (distance
 * 3, corrects any single bit error) and its extended (8,4) SECDED
 * form (an overall parity bit raises the distance to 4: corrects any
 * single error and *detects* any double error). The wire format uses
 * (8,4) — every payload nibble costs one byte on the wire — and the
 * soft decoder runs maximum-likelihood correlation over the 16
 * codewords using the spy's per-bit confidences.
 *
 * Codewords are systematic: bits [0..3] are the data nibble (MSB
 * first), bits [4..6] the Hamming parity, bit [7] the overall
 * parity. All codecs are pure functions over small tables, so the
 * tests enumerate them exhaustively.
 */

#ifndef COHERSIM_PHY_HAMMING_HH
#define COHERSIM_PHY_HAMMING_HH

#include <cstdint>
#include <optional>

#include "common/bit_string.hh"

namespace csim
{

/** Wire bits per (8,4) codeword. */
inline constexpr std::size_t hammingCodeBits = 8;
/** Data bits per codeword (one nibble). */
inline constexpr std::size_t hammingDataBits = 4;

/** One received wire bit with the demapper's confidence. */
struct SoftBit
{
    std::uint8_t bit = 0;
    /** Decision confidence in [0, 1]; 0 = coin toss, 1 = certain. */
    double confidence = 1.0;
};

/** What a hard-decision decode concluded. */
enum class FecOutcome : std::uint8_t
{
    clean,          //!< codeword received intact
    corrected,      //!< single error corrected
    uncorrectable,  //!< double error detected (SECDED) / garbled
};

/** Encode a nibble into 7 bits: [d3 d2 d1 d0 p0 p1 p2]. */
BitString hammingEncode74(std::uint8_t nibble);

/**
 * Hard-decision (7,4) decode: the unique codeword within Hamming
 * distance 1. @p outcome reports whether a correction was applied
 * (distance-1 words always decode; the code has no detect-only
 * region).
 */
std::uint8_t hammingDecode74(const BitString &bits,
                             FecOutcome *outcome = nullptr);

/** Encode a nibble into 8 bits: the (7,4) word plus overall parity. */
BitString hammingEncode84(std::uint8_t nibble);

/**
 * Hard-decision (8,4) SECDED decode: corrects a single error,
 * returns nullopt on a detected double error.
 */
std::optional<std::uint8_t>
hammingDecode84(const BitString &bits, FecOutcome *outcome = nullptr);

/**
 * Soft-decision (8,4) decode: maximum-likelihood over the 16
 * codewords, scoring each by the confidence-weighted correlation
 * with the received bits (agreeing bit: +confidence; disagreeing:
 * -confidence). Always returns a nibble — soft decoding has no
 * detect-only region; a genuinely hopeless codeword simply decodes
 * to the least-wrong candidate. @p bits must hold hammingCodeBits
 * entries. @p outcome reports clean/corrected relative to the hard
 * bit decisions.
 */
std::uint8_t hammingDecodeSoft(const SoftBit *bits,
                               FecOutcome *outcome = nullptr);

} // namespace csim

#endif // COHERSIM_PHY_HAMMING_HH
