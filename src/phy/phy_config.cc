#include "phy/phy_config.hh"

#include <cstring>
#include <initializer_list>

namespace csim
{

const char *
phyProfileName(PhyProfile p)
{
    switch (p) {
      case PhyProfile::legacyParity: return "legacy-parity";
      case PhyProfile::hammingHard: return "hamming-hard";
      case PhyProfile::hammingSoft: return "hamming-soft";
    }
    return "?";
}

bool
phyProfileFromName(const char *name, PhyProfile &out)
{
    for (const PhyProfile p :
         {PhyProfile::legacyParity, PhyProfile::hammingHard,
          PhyProfile::hammingSoft}) {
        if (std::strcmp(name, phyProfileName(p)) == 0) {
            out = p;
            return true;
        }
    }
    return false;
}

} // namespace csim
