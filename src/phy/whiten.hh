/**
 * @file
 * Data whitening: XOR the frame body with a PN9 pseudo-noise
 * sequence so long runs of identical payload bits still produce a
 * balanced wire stream. The operation is involutive — whitening and
 * dewhitening are the same call — and the generator restarts per
 * frame (seeded by the frame sequence number), so a lost frame never
 * desynchronizes the next one.
 */

#ifndef COHERSIM_PHY_WHITEN_HH
#define COHERSIM_PHY_WHITEN_HH

#include <cstdint>

#include "common/bit_string.hh"

namespace csim
{

/**
 * 9-bit LFSR (x^9 + x^5 + 1, the CC1101/LoRa PN9 polynomial)
 * producing one whitening bit per step.
 */
class Pn9
{
  public:
    /** @param seed initial register state; 0 is mapped to all-ones. */
    explicit Pn9(std::uint16_t seed = 0x1ff)
        : state_(seed & 0x1ff ? static_cast<std::uint16_t>(seed & 0x1ff)
                              : std::uint16_t{0x1ff})
    {
    }

    /** Next whitening bit (the register's LSB before shifting). */
    std::uint8_t
    next()
    {
        const std::uint8_t out = state_ & 1;
        const std::uint16_t fb =
            ((state_ >> 0) ^ (state_ >> 5)) & 1;
        state_ = static_cast<std::uint16_t>((state_ >> 1) |
                                            (fb << 8));
        return out;
    }

  private:
    std::uint16_t state_;
};

/** XOR @p bits in place with the PN9 stream started from @p seed. */
void whitenBits(BitString &bits, std::uint16_t seed);

} // namespace csim

#endif // COHERSIM_PHY_WHITEN_HH
