#include "phy/adaptive.hh"

#include <algorithm>

namespace csim
{

double
bandSampleSeparation(const SampleSet &a, const SampleSet &b)
{
    if (a.count() == 0 || b.count() == 0)
        return 0.0;
    const double a_lo = a.percentile(5.0), a_hi = a.percentile(95.0);
    const double b_lo = b.percentile(5.0), b_hi = b.percentile(95.0);
    // Positive gap when the intervals are disjoint; the (negative)
    // overlap depth otherwise — same convention as assessBands.
    return std::max(b_lo - a_hi, a_lo - b_hi);
}

AdaptiveDecision
phyChooseOperatingPoint(const CalibrationResult &cal,
                        const ScenarioInfo &scenario,
                        int noise_threads)
{
    AdaptiveDecision d;
    d.separation = bandSampleSeparation(
        cal.comboSamples(scenario.csc),
        cal.comboSamples(scenario.csb));

    // Fixed deterministic tiers. The separation thresholds are in
    // cycles of the reference clock; jitter/contention widen the
    // sampled intervals, so a shrinking gap is exactly the early
    // warning that fast hard decisions will start flipping.
    if (d.separation >= 30.0 && noise_threads == 0) {
        d.profile = PhyProfile::hammingHard;
        d.rateKbps = 550.0;
    } else if (d.separation >= 30.0) {
        d.profile = PhyProfile::hammingSoft;
        d.rateKbps = 500.0;
    } else if (d.separation >= 12.0) {
        d.profile = PhyProfile::hammingSoft;
        d.rateKbps = 450.0;
    } else {
        d.profile = PhyProfile::hammingSoft;
        d.rateKbps = 400.0;
    }
    return d;
}

} // namespace csim
