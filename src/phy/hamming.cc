#include "phy/hamming.hh"

#include <array>
#include <bit>

#include "common/logging.hh"

namespace csim
{

namespace
{

/** (7,4) generator rows for the parity bits p0..p2 (data masks). */
constexpr std::array<std::uint8_t, 3> parityMask = {
    0b1101,  // p0 = d3 ^ d2 ^ d0
    0b1011,  // p1 = d3 ^ d1 ^ d0
    0b0111,  // p2 = d2 ^ d1 ^ d0
};

/** (7,4) codeword of a nibble, bit 6 = d3 ... bit 0 = p2. */
constexpr std::uint8_t
word74(std::uint8_t nibble)
{
    std::uint8_t w = static_cast<std::uint8_t>((nibble & 0xf) << 3);
    for (std::size_t i = 0; i < parityMask.size(); ++i) {
        const int p =
            std::popcount(
                static_cast<unsigned>(nibble & parityMask[i])) &
            1;
        w = static_cast<std::uint8_t>(w | (p << (2 - i)));
    }
    return w;
}

/** (8,4) codeword, bit 7 = d3 ... bit 0 = overall parity. */
constexpr std::uint8_t
word84(std::uint8_t nibble)
{
    const std::uint8_t w7 = word74(nibble);
    const int q = std::popcount(static_cast<unsigned>(w7)) & 1;
    return static_cast<std::uint8_t>((w7 << 1) | q);
}

template <std::uint8_t (*Word)(std::uint8_t)>
constexpr std::array<std::uint8_t, 16>
makeTable()
{
    std::array<std::uint8_t, 16> t{};
    for (std::uint8_t n = 0; n < 16; ++n)
        t[n] = Word(n);
    return t;
}

constexpr std::array<std::uint8_t, 16> table74 = makeTable<word74>();
constexpr std::array<std::uint8_t, 16> table84 = makeTable<word84>();

std::uint8_t
packBits(const BitString &bits, std::size_t n)
{
    panic_if(bits.size() != n, "hamming: expected ", n,
             " bits, got ", bits.size());
    std::uint8_t w = 0;
    for (std::size_t i = 0; i < n; ++i)
        w = static_cast<std::uint8_t>((w << 1) | (bits[i] & 1));
    return w;
}

BitString
unpackBits(std::uint8_t w, std::size_t n)
{
    BitString bits(n);
    for (std::size_t i = 0; i < n; ++i)
        bits[i] = (w >> (n - 1 - i)) & 1;
    return bits;
}

/**
 * Nearest codeword by Hamming distance; 16 candidates make the
 * exhaustive scan both trivially correct and trivially fast.
 */
std::pair<std::uint8_t, int>
nearest(const std::array<std::uint8_t, 16> &table, std::uint8_t w)
{
    std::uint8_t best = 0;
    int best_dist = 9;
    for (std::uint8_t n = 0; n < 16; ++n) {
        const int d =
            std::popcount(static_cast<unsigned>(table[n] ^ w));
        if (d < best_dist) {
            best_dist = d;
            best = n;
        }
    }
    return {best, best_dist};
}

} // namespace

BitString
hammingEncode74(std::uint8_t nibble)
{
    return unpackBits(table74[nibble & 0xf], 7);
}

std::uint8_t
hammingDecode74(const BitString &bits, FecOutcome *outcome)
{
    const std::uint8_t w = packBits(bits, 7);
    const auto [nibble, dist] = nearest(table74, w);
    if (outcome) {
        *outcome = dist == 0 ? FecOutcome::clean
                             : FecOutcome::corrected;
    }
    return nibble;
}

BitString
hammingEncode84(std::uint8_t nibble)
{
    return unpackBits(table84[nibble & 0xf], 8);
}

std::optional<std::uint8_t>
hammingDecode84(const BitString &bits, FecOutcome *outcome)
{
    const std::uint8_t w = packBits(bits, 8);
    const auto [nibble, dist] = nearest(table84, w);
    if (dist == 0) {
        if (outcome)
            *outcome = FecOutcome::clean;
        return nibble;
    }
    if (dist == 1) {
        if (outcome)
            *outcome = FecOutcome::corrected;
        return nibble;
    }
    // Distance >= 2 from every codeword: with minimum distance 4
    // this is exactly the detected-double-error region.
    if (outcome)
        *outcome = FecOutcome::uncorrectable;
    return std::nullopt;
}

std::uint8_t
hammingDecodeSoft(const SoftBit *bits, FecOutcome *outcome)
{
    std::uint8_t hard = 0;
    for (std::size_t i = 0; i < hammingCodeBits; ++i) {
        hard = static_cast<std::uint8_t>((hard << 1) |
                                         (bits[i].bit & 1));
    }
    std::uint8_t best = 0;
    double best_score = -1e18;
    for (std::uint8_t n = 0; n < 16; ++n) {
        double score = 0.0;
        for (std::size_t i = 0; i < hammingCodeBits; ++i) {
            const std::uint8_t code_bit =
                (table84[n] >> (hammingCodeBits - 1 - i)) & 1;
            score += code_bit == (bits[i].bit & 1)
                         ? bits[i].confidence
                         : -bits[i].confidence;
        }
        // Strict improvement keeps ties on the lowest nibble, so the
        // decode is deterministic for every input.
        if (score > best_score) {
            best_score = score;
            best = n;
        }
    }
    if (outcome) {
        *outcome = table84[best] == hard ? FecOutcome::clean
                                         : FecOutcome::corrected;
    }
    return best;
}

} // namespace csim
