/**
 * @file
 * The instruction set available to simulated-thread coroutines.
 *
 * ThreadApi is a cheap value handle passed into every thread body.
 * Its methods return awaiters; `co_await api.load(addr)` yields the
 * observed latency in cycles, mirroring an rdtsc-timed load on real
 * hardware.
 */

#ifndef COHERSIM_SIM_THREAD_API_HH
#define COHERSIM_SIM_THREAD_API_HH

#include <coroutine>

#include "common/types.hh"
#include "sim/thread.hh"

namespace csim
{

class Scheduler;
class TraceBus;

/** Awaiter that parks a MemOp on the thread and yields its latency. */
struct OpAwaiter
{
    SimThread *thread;
    MemOp op;

    bool await_ready() const noexcept { return false; }
    void
    await_suspend(std::coroutine_handle<>) noexcept
    {
        thread->pending = op;
    }
    /** @return latency of the operation in cycles. */
    Tick await_resume() const noexcept { return thread->lastLatency; }
};

/**
 * Per-thread facade over the simulation engine.
 *
 * All members are awaitable except the queries (now(), core(), ...).
 */
class ThreadApi
{
  public:
    ThreadApi() = default;
    ThreadApi(SimThread *thread, Scheduler *sched)
        : thread_(thread), sched_(sched)
    {}

    /** Timed load of the line containing @p addr. */
    OpAwaiter
    load(VAddr addr) const
    {
        return {thread_, MemOp{MemOp::Kind::load, addr, 0}};
    }

    /** Store to the line containing @p addr. */
    OpAwaiter
    store(VAddr addr) const
    {
        return {thread_, MemOp{MemOp::Kind::store, addr, 0}};
    }

    /** clflush the line containing @p addr from every cache. */
    OpAwaiter
    flush(VAddr addr) const
    {
        return {thread_, MemOp{MemOp::Kind::flush, addr, 0}};
    }

    /** Busy-wait for @p cycles cycles. */
    OpAwaiter
    spin(Tick cycles) const
    {
        return {thread_, MemOp{MemOp::Kind::spin, 0, cycles}};
    }

    /** Busy-wait until the thread clock reaches @p tick. */
    OpAwaiter
    spinUntil(Tick tick) const
    {
        return {thread_, MemOp{MemOp::Kind::spinUntil, 0, tick}};
    }

    /**
     * Block for @p cycles without occupying the core (an I/O wait
     * or nanosleep); other threads pinned to the core may run.
     */
    OpAwaiter
    sleep(Tick cycles) const
    {
        return {thread_, MemOp{MemOp::Kind::sleep, 0, cycles}};
    }

    /** rdtsc equivalent: the thread's current cycle count. */
    Tick now() const { return thread_->now; }

    /** Where the last load/store/flush was serviced from. */
    ServedBy lastServed() const { return thread_->lastServed; }

    ThreadId id() const { return thread_->id(); }
    CoreId core() const { return thread_->core(); }
    /** Covert-channel pair of this thread (0: not part of a pair). */
    std::uint32_t pairTag() const { return thread_->pairTag; }
    SimThread *thread() const { return thread_; }
    Scheduler *scheduler() const { return sched_; }

    /**
     * The machine's trace bus (nullptr when the scheduler is not
     * wired to one). Defined in scheduler.cc: this header only
     * forward-declares Scheduler.
     */
    TraceBus *traceBus() const;

  private:
    SimThread *thread_ = nullptr;
    Scheduler *sched_ = nullptr;
};

} // namespace csim

#endif // COHERSIM_SIM_THREAD_API_HH
