/**
 * @file
 * The coroutine type simulated threads are written in.
 *
 * A simulated thread body is a C++20 coroutine returning sim::Task.
 * Awaiting a ThreadApi operation (load/store/flush/spin) suspends the
 * coroutine and hands control back to the Scheduler, which executes the
 * operation at the correct point in global virtual time and resumes the
 * coroutine with the observed latency. Tasks compose: a Task may
 * `co_await` another Task, which runs nested on the same simulated
 * thread (used heavily by the channel layer for subroutines such as
 * "place block B in a given coherence state").
 */

#ifndef COHERSIM_SIM_TASK_HH
#define COHERSIM_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <utility>

namespace csim
{

class SimThread;

/**
 * Move-only handle to a simulated-thread coroutine.
 *
 * Top-level Tasks are owned by their SimThread; nested Tasks are owned
 * by the awaiting expression.
 */
class Task
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    /** Awaiter transferring control into a nested Task. */
    struct NestedAwaiter
    {
        Handle inner;
        SimThread *thread;

        bool await_ready() const noexcept
        {
            return !inner || inner.done();
        }
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> outer) noexcept;
        void await_resume() const;
    };

    /** Awaiter run at a Task's final suspend point. */
    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }
        std::coroutine_handle<> await_suspend(Handle h) noexcept;
        void await_resume() const noexcept {}
    };

    struct promise_type
    {
        /** Simulated thread this coroutine executes on. */
        SimThread *thread = nullptr;
        /** Frame to resume when this coroutine completes (nested). */
        std::coroutine_handle<> continuation = nullptr;
        /** Exception escaping the body, rethrown at the awaiter. */
        std::exception_ptr exception = nullptr;

        Task get_return_object()
        {
            return Task(Handle::from_promise(*this));
        }
        std::suspend_always initial_suspend() const noexcept
        {
            return {};
        }
        FinalAwaiter final_suspend() const noexcept { return {}; }
        void return_void() const noexcept {}
        void unhandled_exception()
        {
            exception = std::current_exception();
        }

        /** Awaiting a Task runs it nested on the same thread. */
        NestedAwaiter await_transform(Task &&t) noexcept
        {
            return NestedAwaiter{t.handle_, thread};
        }
        NestedAwaiter await_transform(Task &t) noexcept
        {
            return NestedAwaiter{t.handle_, thread};
        }
        /** Everything else (ThreadApi awaiters) passes through. */
        template <typename A>
        decltype(auto) await_transform(A &&a) const noexcept
        {
            return std::forward<A>(a);
        }
    };

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;
    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}
    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }
    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return handle_ && handle_.done(); }
    Handle handle() const { return handle_; }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    Handle handle_ = nullptr;
};

} // namespace csim

#endif // COHERSIM_SIM_TASK_HH
