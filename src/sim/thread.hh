/**
 * @file
 * Simulated thread state: per-thread virtual clock, pending operation,
 * pinning, and the coroutine stack being executed.
 */

#ifndef COHERSIM_SIM_THREAD_HH
#define COHERSIM_SIM_THREAD_HH

#include <functional>
#include <string>

#include "common/types.hh"
#include "sim/memory_backend.hh"
#include "sim/task.hh"

namespace csim
{

class ThreadApi;

/** One operation a simulated thread has requested from the engine. */
struct MemOp
{
    enum class Kind
    {
        none,       //!< nothing pending (thread finished)
        load,       //!< timed load of a line
        store,      //!< store to a line
        flush,      //!< clflush of a line, system wide
        spin,       //!< burn a fixed number of cycles
        spinUntil,  //!< advance local clock to a target tick
        sleep,      //!< block without occupying the core
    };

    Kind kind = Kind::none;
    VAddr addr = 0;    //!< target address for load/store/flush
    Tick cycles = 0;   //!< duration for spin / target for spinUntil
};

/**
 * A simulated software thread.
 *
 * Threads are created by Scheduler::spawn() and owned by the
 * Scheduler. Each thread carries its own virtual clock; the scheduler
 * interleaves threads by executing the globally earliest pending
 * operation.
 */
class SimThread
{
  public:
    SimThread(ThreadId id, std::string name, CoreId core,
              ProcessId pid);

    ThreadId id() const { return id_; }
    const std::string &name() const { return name_; }
    CoreId core() const { return core_; }
    ProcessId pid() const { return pid_; }

    /** Thread-local virtual clock (cycles). */
    Tick now = 0;
    /** Operation awaiting execution by the scheduler. */
    MemOp pending;
    /** Latency observed by the most recent operation. */
    Tick lastLatency = 0;
    /** Service source of the most recent load/store/flush. */
    ServedBy lastServed = ServedBy::none;
    /** Deepest active coroutine frame (top of the call stack). */
    std::coroutine_handle<> current = nullptr;
    /**
     * True when the pending operation has been executed and the
     * coroutine is waiting to be resumed at @ref now (the op's
     * completion time). Resumes run in global completion-time order
     * so shared C++ state written by coroutines stays consistent
     * with virtual time.
     */
    bool resumePending = false;
    /** Set once the top-level coroutine has completed. */
    bool finished = false;
    /** Operations executed, for stats. */
    std::uint64_t opsExecuted = 0;
    /**
     * Covert-channel pair this thread belongs to; 0 when the thread
     * is not part of any pair. Fleet orchestration tags every
     * adversary thread (pairs are numbered from 1) so the trace
     * events it publishes carry the pair id.
     */
    std::uint32_t pairTag = 0;

    /**
     * Install the top-level coroutine body. The factory is moved
     * into the thread *before* being invoked and is never moved
     * again: the coroutine frame refers to the closure's captures,
     * so the closure must stay at a stable address for the thread's
     * lifetime.
     */
    void installBody(std::function<Task(ThreadApi)> factory,
                     const ThreadApi &api);

    /** Top-level task (for exception inspection). */
    Task &program() { return program_; }

  private:
    ThreadId id_;
    std::string name_;
    CoreId core_;
    ProcessId pid_;
    std::function<Task(ThreadApi)> factory_;
    Task program_;
};

} // namespace csim

#endif // COHERSIM_SIM_THREAD_HH
