#include "sim/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace csim
{

Scheduler::Scheduler(MemoryBackend *backend, int num_cores,
                     SchedulerParams params)
    : backend_(backend), params_(params)
{
    fatal_if(num_cores <= 0, "scheduler needs at least one core");
    fatal_if(!backend, "scheduler needs a memory backend");
    cores_.resize(static_cast<std::size_t>(num_cores));
}

Scheduler::~Scheduler() = default;

SimThread *
Scheduler::spawn(const std::string &name, CoreId core, ProcessId pid,
                 std::function<Task(ThreadApi)> body)
{
    fatal_if(core < 0 || core >= numCores(),
             "thread ", name, " pinned to invalid core ", core);
    const auto tid = static_cast<ThreadId>(threads_.size());
    auto thread = std::make_unique<SimThread>(tid, name, core, pid);
    // Threads spawned mid-simulation start at the current global time.
    thread->now = globalNow_;
    ThreadApi api(thread.get(), this);
    thread->installBody(std::move(body), api);
    threads_.push_back(std::move(thread));
    return threads_.back().get();
}

bool
Scheduler::allFinished() const
{
    return std::all_of(threads_.begin(), threads_.end(),
                       [](const auto &t) { return t->finished; });
}

bool
Scheduler::hasWaiter(CoreId core, ThreadId except) const
{
    for (const auto &t : threads_) {
        if (t->id() != except && !t->finished && t->core() == core)
            return true;
    }
    return false;
}

Tick
Scheduler::effectiveStart(const SimThread &t) const
{
    const auto &core = cores_[static_cast<std::size_t>(t.core())];
    Tick start = std::max(t.now, core.freeAt);
    if (core.lastThread != t.id() &&
        core.lastThread != invalidThread) {
        start += params_.contextSwitchPenalty;
    }
    return start;
}

SimThread *
Scheduler::pickNext()
{
    // Two event kinds compete: coroutine resumes (at an op's
    // completion time) and op issues (at an op's start time).
    // Resumes run first at equal times so shared state written by a
    // coroutine at virtual time T is visible to every operation
    // issued at or after T.
    SimThread *best = nullptr;
    Tick best_time = maxTick;
    bool best_is_resume = false;
    auto consider = [&](SimThread *t, Tick time, bool is_resume) {
        if (time < best_time ||
            (time == best_time && is_resume && !best_is_resume)) {
            best = t;
            best_time = time;
            best_is_resume = is_resume;
        }
    };
    auto scan = [&](bool honor_yield) {
        for (const auto &tp : threads_) {
            SimThread &t = *tp;
            if (t.finished)
                continue;
            if (t.resumePending) {
                consider(&t, t.now, true);
            } else if (t.pending.kind != MemOp::Kind::none) {
                const auto &core =
                    cores_[static_cast<std::size_t>(t.core())];
                if (honor_yield && core.mustYield &&
                    core.lastThread == t.id() &&
                    hasWaiter(t.core(), t.id())) {
                    continue;
                }
                consider(&t, effectiveStart(t), false);
            }
        }
    };
    scan(true);
    if (!best) {
        // Everyone skipped for quantum reasons: clear yield flags and
        // rescan so we never deadlock.
        bool any_yield = false;
        for (auto &c : cores_) {
            any_yield = any_yield || c.mustYield;
            c.mustYield = false;
        }
        if (any_yield)
            scan(false);
    }
    return best;
}

void
Scheduler::resume(SimThread &t)
{
    globalNow_ = std::max(globalNow_, t.now);
    t.resumePending = false;
    panic_if(!t.current, "thread ", t.name(),
             " has no coroutine frame to resume");
    t.current.resume();

    if (t.finished) {
        auto h = t.program().handle();
        if (h && h.promise().exception)
            std::rethrow_exception(h.promise().exception);
    } else {
        panic_if(t.pending.kind == MemOp::Kind::none,
                 "thread ", t.name(),
                 " suspended without a pending operation");
    }
}

void
Scheduler::execute(SimThread &t)
{
    auto &core = cores_[static_cast<std::size_t>(t.core())];
    if (t.pending.kind == MemOp::Kind::sleep) {
        // Sleeping releases the core: no occupancy, no switch cost.
        const Tick start = t.now;
        globalNow_ = std::max(globalNow_, start);
        t.lastLatency = t.pending.cycles;
        t.now = start + t.pending.cycles;
        t.pending = MemOp{};
        ++t.opsExecuted;
        if (core.lastThread == t.id())
            core.lastThread = invalidThread;
        t.resumePending = true;
        if (trace_ && trace_->enabled<TraceCategory::sched>()) {
            trace_->publish(TraceEvent{
                TraceEventType::schedSleep, TraceCategory::sched,
                t.core(), start, 0,
                static_cast<std::uint64_t>(t.id()), t.lastLatency});
        }
        return;
    }
    const Tick start = effectiveStart(t);
    if (core.lastThread != t.id()) {
        if (core.lastThread != invalidThread && trace_ &&
            trace_->enabled<TraceCategory::sched>()) {
            trace_->publish(TraceEvent{
                TraceEventType::schedSwitch, TraceCategory::sched,
                t.core(), start, 0,
                static_cast<std::uint64_t>(core.lastThread),
                static_cast<std::uint64_t>(t.id())});
        }
        core.lastThread = t.id();
        core.acquiredAt = start;
        core.mustYield = false;
    }

    const MemOp op = t.pending;
    t.pending = MemOp{};
    globalNow_ = std::max(globalNow_, start);

    AccessResult res;
    switch (op.kind) {
      case MemOp::Kind::load:
        res = backend_->load(t.id(), t.core(), op.addr, start);
        break;
      case MemOp::Kind::store:
        res = backend_->store(t.id(), t.core(), op.addr, start);
        break;
      case MemOp::Kind::flush:
        res = backend_->flush(t.id(), t.core(), op.addr, start);
        break;
      case MemOp::Kind::spin:
        res.latency = op.cycles;
        break;
      case MemOp::Kind::spinUntil:
        res.latency = op.cycles > start ? op.cycles - start : 0;
        break;
      case MemOp::Kind::sleep:
        panic("sleep handled before core accounting");
      case MemOp::Kind::none:
        panic("executing thread ", t.name(), " with no pending op");
    }

    t.lastLatency = res.latency;
    if (op.kind == MemOp::Kind::load ||
        op.kind == MemOp::Kind::store ||
        op.kind == MemOp::Kind::flush) {
        t.lastServed = res.servedBy;
    }
    t.now = start + res.latency;
    ++t.opsExecuted;
    core.freeAt = t.now;
    if (t.now - core.acquiredAt > params_.quantum &&
        hasWaiter(t.core(), t.id())) {
        core.mustYield = true;
        if (trace_ && trace_->enabled<TraceCategory::sched>()) {
            trace_->publish(TraceEvent{
                TraceEventType::schedPreempt, TraceCategory::sched,
                t.core(), t.now, 0,
                static_cast<std::uint64_t>(t.id()), 0});
        }
    }
    // The coroutine resumes when the operation completes, in global
    // completion-time order (see pickNext).
    t.resumePending = true;
}

bool
Scheduler::stepOne()
{
    SimThread *t = pickNext();
    if (!t)
        return false;
    if (t->resumePending)
        resume(*t);
    else
        execute(*t);
    return true;
}

void
Scheduler::run(Tick until, const std::function<bool()> &stop_when)
{
    while (globalNow_ < until) {
        if (stop_when && stop_when())
            return;
        if (!stepOne())
            return;
    }
}

void
Scheduler::runUntilFinished(const SimThread *thread, Tick until)
{
    run(until, [thread] { return thread->finished; });
}

TraceBus *
ThreadApi::traceBus() const
{
    return sched_ ? sched_->traceBus() : nullptr;
}

} // namespace csim
