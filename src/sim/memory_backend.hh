/**
 * @file
 * Abstract memory interface the scheduler drives.
 *
 * The sim layer is independent of the concrete memory hierarchy: every
 * memory operation a simulated thread issues is routed through this
 * interface. The OS layer implements it (virtual address translation +
 * fault handling) on top of the mem layer's coherent hierarchy.
 */

#ifndef COHERSIM_SIM_MEMORY_BACKEND_HH
#define COHERSIM_SIM_MEMORY_BACKEND_HH

#include "common/types.hh"

namespace csim
{

/** Where a memory request was ultimately serviced from. */
enum class ServedBy
{
    l1,              //!< requester's private L1
    l2,              //!< requester's private L2
    localLlc,        //!< LLC in the requester's socket (clean copy)
    localOwner,      //!< another core's private cache, same socket
    remoteLlc,       //!< LLC in another socket (clean copy)
    remoteOwner,     //!< another core's private cache, other socket
    dram,            //!< main memory
    none,            //!< no data movement (e.g. flush, upgrade)
};

/** Printable name for a ServedBy value. */
const char *servedByName(ServedBy s);

/** Result of a memory operation. */
struct AccessResult
{
    Tick latency = 0;            //!< cycles until the op completed
    ServedBy servedBy = ServedBy::none;
};

/**
 * Interface between the thread scheduler and the memory system.
 *
 * @note All calls are made in global virtual-time order; the backend
 * may mutate shared coherence state atomically per call.
 */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /** Timed load of one cache line containing @p addr. */
    virtual AccessResult load(ThreadId tid, CoreId core, VAddr addr,
                              Tick when) = 0;

    /** Store to the line containing @p addr (acquires M state). */
    virtual AccessResult store(ThreadId tid, CoreId core, VAddr addr,
                               Tick when) = 0;

    /**
     * clflush equivalent: evict the line containing @p addr from
     * every cache in the system, writing back dirty data.
     */
    virtual AccessResult flush(ThreadId tid, CoreId core, VAddr addr,
                               Tick when) = 0;
};

} // namespace csim

#endif // COHERSIM_SIM_MEMORY_BACKEND_HH
