#include "sim/thread.hh"

#include "sim/thread_api.hh"

#include "common/logging.hh"

namespace csim
{

SimThread::SimThread(ThreadId id, std::string name, CoreId core,
                     ProcessId pid)
    : id_(id), name_(std::move(name)), core_(core), pid_(pid)
{}

void
SimThread::installBody(std::function<Task(ThreadApi)> factory,
                       const ThreadApi &api)
{
    // Move the closure to its final, stable home first; only then
    // create the coroutine frame that points into it.
    factory_ = std::move(factory);
    program_ = factory_(api);
    panic_if(!program_.valid(), "thread ", name_,
             " body produced an invalid task");
    auto h = program_.handle();
    h.promise().thread = this;
    current = h;
    // Arm a zero-length spin so the scheduler's first step resumes
    // the coroutine body.
    pending = MemOp{MemOp::Kind::spin, 0, 0};
}

std::coroutine_handle<>
Task::NestedAwaiter::await_suspend(std::coroutine_handle<> outer)
    noexcept
{
    auto &ip = inner.promise();
    ip.thread = thread;
    ip.continuation = outer;
    if (thread)
        thread->current = inner;
    // Symmetric transfer: start running the nested task immediately.
    return inner;
}

void
Task::NestedAwaiter::await_resume() const
{
    if (inner && inner.promise().exception)
        std::rethrow_exception(inner.promise().exception);
}

std::coroutine_handle<>
Task::FinalAwaiter::await_suspend(Task::Handle h) noexcept
{
    auto &p = h.promise();
    if (p.continuation) {
        // Nested task completed: resume the awaiting frame.
        if (p.thread)
            p.thread->current = p.continuation;
        return p.continuation;
    }
    // Top-level task completed: park the thread.
    if (p.thread) {
        p.thread->finished = true;
        p.thread->pending = MemOp{};
        p.thread->current = nullptr;
    }
    return std::noop_coroutine();
}

const char *
servedByName(ServedBy s)
{
    switch (s) {
      case ServedBy::l1: return "L1";
      case ServedBy::l2: return "L2";
      case ServedBy::localLlc: return "local-LLC";
      case ServedBy::localOwner: return "local-owner";
      case ServedBy::remoteLlc: return "remote-LLC";
      case ServedBy::remoteOwner: return "remote-owner";
      case ServedBy::dram: return "DRAM";
      case ServedBy::none: return "none";
    }
    return "?";
}

} // namespace csim
