/**
 * @file
 * Synchronization primitives for simulated threads.
 *
 * Simulated threads within one process may share C++ state directly
 * (just as real threads share memory); what must be modelled is the
 * *time* spent waiting. These primitives therefore expose polling
 * helpers built on ThreadApi::spin so waiting burns virtual cycles,
 * matching the spin-wait loops of the paper's trojan implementation.
 */

#ifndef COHERSIM_SIM_SYNC_HH
#define COHERSIM_SIM_SYNC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "common/types.hh"
#include "sim/task.hh"
#include "sim/thread_api.hh"

namespace csim
{

/**
 * Single-producer command queue between a controller thread and a
 * helper thread of the same simulated process.
 */
template <typename T>
class Mailbox
{
  public:
    /** Enqueue a message (no simulated cost; callers add spin). */
    void post(T msg) { queue_.push_back(std::move(msg)); }

    /** Dequeue the oldest message, if any. */
    std::optional<T>
    tryTake()
    {
        if (queue_.empty())
            return std::nullopt;
        T msg = std::move(queue_.front());
        queue_.pop_front();
        return msg;
    }

    bool empty() const { return queue_.empty(); }
    std::size_t size() const { return queue_.size(); }

  private:
    std::deque<T> queue_;
};

/** Shared monotonically increasing acknowledgement counter. */
class AckCounter
{
  public:
    void bump() { ++value_; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Reusable spin barrier: all @p parties must arrive before any of
 * them proceeds. Wait via awaiting barrierWait().
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(int parties) : parties_(parties) {}

    /** Register arrival; @return the generation to wait on. */
    std::uint64_t arrive();

    /** True once generation @p gen has been released. */
    bool passed(std::uint64_t gen) const { return generation_ > gen; }

    int parties() const { return parties_; }

  private:
    int parties_;
    int arrived_ = 0;
    std::uint64_t generation_ = 0;
};

/**
 * Coroutine helper: spin until @p pred holds, polling every
 * @p poll_interval cycles.
 */
Task pollUntil(ThreadApi api, std::function<bool()> pred,
               Tick poll_interval);

/** Coroutine helper: arrive at @p barrier and spin until released. */
Task barrierWait(ThreadApi api, SpinBarrier &barrier,
                 Tick poll_interval);

} // namespace csim

#endif // COHERSIM_SIM_SYNC_HH
