/**
 * @file
 * Deterministic virtual-time thread scheduler.
 *
 * The engine is a conservative sequential parallel-discrete-event
 * simulator: every simulated thread carries its own cycle clock, and
 * the scheduler always executes the globally earliest pending
 * operation, so shared coherence state mutates in correct virtual-time
 * order. Cores are modelled as serially reusable resources with an
 * optional context-switch penalty and a preemption quantum so
 * oversubscribed cores (the noise experiments) time-share fairly.
 */

#ifndef COHERSIM_SIM_SCHEDULER_HH
#define COHERSIM_SIM_SCHEDULER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/memory_backend.hh"
#include "sim/task.hh"
#include "sim/thread.hh"
#include "sim/thread_api.hh"
#include "trace/bus.hh"

namespace csim
{

/** Tunables for the execution engine. */
struct SchedulerParams
{
    /** Cycles charged when a core switches between threads. */
    Tick contextSwitchPenalty = 500;
    /** Max cycles a thread may hold a contested core (~1us at
     *  2.67 GHz, modelling a preemptive scheduler's granularity). */
    Tick quantum = 3'000;
};

/**
 * Owns all simulated threads and drives them in virtual-time order.
 */
class Scheduler
{
  public:
    /**
     * @param backend memory system handling load/store/flush.
     * @param num_cores number of cores in the machine.
     */
    Scheduler(MemoryBackend *backend, int num_cores,
              SchedulerParams params = {});
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Create a simulated thread pinned to a core.
     *
     * @param name debug name.
     * @param core core to pin to (sched_setaffinity equivalent).
     * @param pid owning simulated process.
     * @param body factory invoked with the thread's api to produce
     *             its coroutine.
     * @return non-owning pointer, valid for the scheduler's lifetime.
     */
    SimThread *spawn(const std::string &name, CoreId core,
                     ProcessId pid,
                     std::function<Task(ThreadApi)> body);

    /**
     * Execute pending operations in virtual-time order.
     *
     * Stops when all threads finished, when the global clock passes
     * @p until, or when @p stop_when returns true (checked between
     * operations).
     */
    void run(Tick until = maxTick,
             const std::function<bool()> &stop_when = {});

    /** Convenience: run until the given thread's coroutine returns. */
    void runUntilFinished(const SimThread *thread,
                          Tick until = maxTick);

    /** Execute exactly one pending operation. @return false if idle. */
    bool stepOne();

    /** Global clock: start time of the most recent operation. */
    Tick now() const { return globalNow_; }

    /** All threads spawned so far. */
    const std::vector<std::unique_ptr<SimThread>> &
    threads() const
    {
        return threads_;
    }

    int numCores() const { return static_cast<int>(cores_.size()); }

    /** True when every spawned thread has completed. */
    bool allFinished() const;

    /**
     * Publish sched.* events into @p bus (the machine-wide trace
     * bus; Machine wires this up). nullptr disables sched tracing.
     */
    void setTraceBus(TraceBus *bus) { trace_ = bus; }

    /** The trace bus this scheduler publishes into, if any. */
    TraceBus *traceBus() const { return trace_; }

  private:
    struct CoreState
    {
        Tick freeAt = 0;          //!< core busy until this tick
        ThreadId lastThread = invalidThread;
        Tick acquiredAt = 0;      //!< when lastThread got the core
        bool mustYield = false;   //!< quantum expired, switch next
    };

    /** Earliest tick at which @p t's pending op could start. */
    Tick effectiveStart(const SimThread &t) const;

    /** Pick the next thread to execute, or nullptr if all idle. */
    SimThread *pickNext();

    /**
     * Execute the pending op of @p t (memory mutations apply at the
     * op's start time) and arm its resume at the completion time.
     */
    void execute(SimThread &t);

    /** Resume @p t's coroutine at its op's completion time. */
    void resume(SimThread &t);

    /** True if another unfinished thread is pinned to @p core. */
    bool hasWaiter(CoreId core, ThreadId except) const;

    MemoryBackend *backend_;
    SchedulerParams params_;
    std::vector<CoreState> cores_;
    std::vector<std::unique_ptr<SimThread>> threads_;
    Tick globalNow_ = 0;
    TraceBus *trace_ = nullptr;
};

} // namespace csim

#endif // COHERSIM_SIM_SCHEDULER_HH
