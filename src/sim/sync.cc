#include "sim/sync.hh"

#include "common/logging.hh"

namespace csim
{

std::uint64_t
SpinBarrier::arrive()
{
    const std::uint64_t gen = generation_;
    if (++arrived_ >= parties_) {
        arrived_ = 0;
        ++generation_;
    }
    return gen;
}

Task
pollUntil(ThreadApi api, std::function<bool()> pred,
          Tick poll_interval)
{
    panic_if(poll_interval == 0, "pollUntil needs a non-zero interval");
    while (!pred())
        co_await api.spin(poll_interval);
}

Task
barrierWait(ThreadApi api, SpinBarrier &barrier, Tick poll_interval)
{
    const auto gen = barrier.arrive();
    co_await pollUntil(
        api, [&barrier, gen] { return barrier.passed(gen); },
        poll_interval);
}

} // namespace csim
